//! Rank distributions (the monotone family `f_w`).
//!
//! A rank assignment maps each key to a rank value drawn from a distribution
//! that depends on its weight (Section 3). The paper highlights two families
//! with special structure:
//!
//! * **EXP ranks** — `f_w = EXP[w]`, i.e. `r = -ln(1-u)/w` for a uniform seed
//!   `u`. The minimum of EXP ranks over a set is `EXP[w(J)]`, which underlies
//!   the k-mins estimators and the independent-differences construction.
//! * **IPPS ranks** — `f_w = U[0, 1/w]`, i.e. `r = u/w`. Poisson sampling with
//!   IPPS ranks is inclusion-probability-proportional-to-size sampling and
//!   bottom-k sampling with IPPS ranks is priority sampling.
//!
//! Both families are *monotone*: a larger weight stochastically decreases the
//! rank, which is what makes shared-seed rank assignments consistent.

/// The family of rank distributions used to draw rank values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankFamily {
    /// Exponential ranks: `f_w = EXP[w]`.
    Exp,
    /// IPPS ranks: `f_w = U[0, 1/w]` (priority sampling for bottom-k).
    Ipps,
}

impl RankFamily {
    /// The rank value `F_w^{-1}(u)` for a key of weight `w` and seed
    /// `u ∈ (0, 1)`.
    ///
    /// Zero-weight keys receive rank `+∞`, matching the convention of the
    /// paper (`w^(b)(i) = 0 ⇒ r^(b)(i) = +∞`).
    #[inline]
    #[must_use]
    pub fn rank_from_seed(self, weight: f64, seed: f64) -> f64 {
        debug_assert!(seed > 0.0 && seed < 1.0, "seed must be in (0,1), got {seed}");
        debug_assert!(weight >= 0.0, "weight must be non-negative");
        if weight <= 0.0 {
            return f64::INFINITY;
        }
        match self {
            RankFamily::Exp => -(-seed).ln_1p() / weight,
            RankFamily::Ipps => seed / weight,
        }
    }

    /// The weight-independent numerator of the rank: for both families the
    /// rank factors as `rank_from_seed(w, u) == rank_base(u) / w`, computed
    /// with the exact same floating-point operations.
    ///
    /// The multi-assignment ingestion hot path exploits this: the base is
    /// derived from the shared seed once per record (one hash, and for EXP
    /// ranks one logarithm), and every assignment needs only a division —
    /// or, for its threshold pre-filter, only a multiplication.
    #[inline]
    #[must_use]
    pub fn rank_base(self, seed: f64) -> f64 {
        debug_assert!(seed > 0.0 && seed < 1.0, "seed must be in (0,1), got {seed}");
        match self {
            RankFamily::Exp => -(-seed).ln_1p(),
            RankFamily::Ipps => seed,
        }
    }

    /// The cumulative distribution `F_w(x) = Pr[r < x]` for weight `w`.
    ///
    /// This is the inclusion probability of a key with weight `w` when the
    /// sampling threshold (Poisson τ or the conditioned k-th rank) is `x`.
    /// For `w = 0` the probability is `0`; for `x = +∞` it is `1` whenever
    /// `w > 0`.
    #[inline]
    #[must_use]
    pub fn inclusion_probability(self, weight: f64, threshold: f64) -> f64 {
        debug_assert!(weight >= 0.0, "weight must be non-negative");
        if weight <= 0.0 || threshold <= 0.0 {
            return 0.0;
        }
        if threshold.is_infinite() {
            return 1.0;
        }
        match self {
            RankFamily::Exp => -(-weight * threshold).exp_m1(),
            RankFamily::Ipps => (weight * threshold).min(1.0),
        }
    }

    /// The seed that would produce rank exactly `rank` for weight `weight`,
    /// i.e. `F_w(rank)` interpreted as a seed value.
    ///
    /// For shared-seed consistent rank assignments the seed of a sampled key
    /// can be recovered from any of its (rank, weight) pairs via this
    /// function; the l-set estimators use it (Section 7.2, "known seeds").
    #[inline]
    #[must_use]
    pub fn seed_from_rank(self, weight: f64, rank: f64) -> f64 {
        self.inclusion_probability(weight, rank)
    }

    /// Human-readable name used by the experiment harness.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RankFamily::Exp => "exp",
            RankFamily::Ipps => "ipps",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipps_rank_is_seed_over_weight() {
        let r = RankFamily::Ipps.rank_from_seed(20.0, 0.22);
        assert!((r - 0.011).abs() < 1e-12);
    }

    #[test]
    fn exp_rank_matches_formula() {
        let r = RankFamily::Exp.rank_from_seed(2.0, 0.5);
        assert!((r - (-(0.5f64).ln() / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn rank_base_over_weight_is_bit_identical_to_rank_from_seed() {
        for family in [RankFamily::Exp, RankFamily::Ipps] {
            for &w in &[0.001, 0.5, 1.0, 7.5, 1234.5] {
                for &u in &[1e-12, 0.05, 0.3, 0.72, 0.999, 1.0 - 1e-12] {
                    let direct = family.rank_from_seed(w, u);
                    let factored = family.rank_base(u) / w;
                    assert_eq!(direct.to_bits(), factored.to_bits(), "{family:?} w={w} u={u}");
                }
            }
        }
    }

    #[test]
    fn zero_weight_is_infinite_rank() {
        assert!(RankFamily::Ipps.rank_from_seed(0.0, 0.3).is_infinite());
        assert!(RankFamily::Exp.rank_from_seed(0.0, 0.3).is_infinite());
    }

    #[test]
    fn inclusion_probability_bounds() {
        for family in [RankFamily::Exp, RankFamily::Ipps] {
            assert_eq!(family.inclusion_probability(0.0, 1.0), 0.0);
            assert_eq!(family.inclusion_probability(5.0, 0.0), 0.0);
            assert_eq!(family.inclusion_probability(5.0, f64::INFINITY), 1.0);
            let p = family.inclusion_probability(5.0, 0.1);
            assert!(p > 0.0 && p <= 1.0);
        }
    }

    #[test]
    fn ipps_inclusion_probability_caps_at_one() {
        assert_eq!(RankFamily::Ipps.inclusion_probability(10.0, 1.0), 1.0);
        assert!((RankFamily::Ipps.inclusion_probability(0.5, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rank_and_cdf_are_inverse() {
        for family in [RankFamily::Exp, RankFamily::Ipps] {
            for &w in &[0.1, 1.0, 7.5, 100.0] {
                for &u in &[0.05, 0.3, 0.72, 0.999] {
                    let rank = family.rank_from_seed(w, u);
                    let back = family.seed_from_rank(w, rank);
                    assert!((back - u).abs() < 1e-9, "{family:?} w={w} u={u} back={back}");
                }
            }
        }
    }

    #[test]
    fn monotone_in_weight() {
        // Larger weight => smaller rank for the same seed (the consistency
        // property exploited by shared-seed coordination).
        for family in [RankFamily::Exp, RankFamily::Ipps] {
            for &u in &[0.1, 0.5, 0.9] {
                let r_small = family.rank_from_seed(1.0, u);
                let r_large = family.rank_from_seed(10.0, u);
                assert!(r_large < r_small);
            }
        }
    }

    #[test]
    fn monotone_family_cdf_ordering() {
        // F_{w1}(x) >= F_{w2}(x) whenever w1 >= w2 (definition of monotone
        // family, Section 3).
        for family in [RankFamily::Exp, RankFamily::Ipps] {
            for &x in &[0.01, 0.1, 1.0, 10.0] {
                let p1 = family.inclusion_probability(5.0, x);
                let p2 = family.inclusion_probability(1.0, x);
                assert!(p1 >= p2);
            }
        }
    }

    #[test]
    fn exp_min_stability_statistical() {
        // The minimum of EXP[w1], EXP[w2] ranks behaves like EXP[w1+w2]:
        // check the mean of the minimum over a deterministic seed sweep.
        use cws_hash::SeedSequence;
        let seq = SeedSequence::new(5);
        let (w1, w2) = (2.0, 3.0);
        let n = 20_000u64;
        let mean: f64 = (0..n)
            .map(|k| {
                let r1 = RankFamily::Exp.rank_from_seed(w1, seq.assignment_seed(k, 0));
                let r2 = RankFamily::Exp.rank_from_seed(w2, seq.assignment_seed(k, 1));
                r1.min(r2)
            })
            .sum::<f64>()
            / n as f64;
        let expected = 1.0 / (w1 + w2);
        assert!((mean - expected).abs() < 0.01, "mean {mean} expected {expected}");
    }

    #[test]
    fn names() {
        assert_eq!(RankFamily::Exp.name(), "exp");
        assert_eq!(RankFamily::Ipps.name(), "ipps");
    }
}
