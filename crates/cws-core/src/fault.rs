//! Deterministic, seedable fault injection for robustness testing.
//!
//! A long-lived sampling service has to survive the failures the paper's
//! model abstracts away: worker threads that panic mid-epoch, shards that
//! stall, and writes that are torn by a crash at an arbitrary byte offset.
//! This module provides the *injection* half of that story — small,
//! dependency-free wrappers that make those failures reproducible on
//! demand, from ordinary integration tests, with no `cfg(test)` hooks:
//!
//! * [`FaultPlan`] — a seeded deterministic schedule generator (SplitMix64).
//!   Every fault a test injects derives from a plan seed, so a failing
//!   interleaving reruns bit-exactly from its seed alone.
//! * [`FailingWriter`] / [`FailingReader`] — I/O wrappers that perform
//!   faithfully up to a chosen byte offset and then fail with a chosen
//!   [`std::io::ErrorKind`]. Writing through a `FailingWriter` and keeping
//!   what reached the inner writer models a **torn write** (a crash at that
//!   offset).
//! * [`ShortWriter`] / [`ShortReader`] — wrappers that transfer at most `n`
//!   bytes per call, exercising every partial-progress loop in a codec.
//! * [`InterruptingWriter`] / [`InterruptingReader`] — wrappers that
//!   sprinkle [`std::io::ErrorKind::Interrupted`] results on a seeded
//!   schedule; correct callers must retry, incorrect ones surface
//!   immediately.
//! * [`WorkerFault`] — the typed faults a shard worker can be instructed to
//!   exhibit (used by `cws-stream`'s sharded engine, which accepts them
//!   through its public `inject_worker_fault` supervision API).
//!
//! The wrappers live in the library proper (not behind `cfg(test)`) so the
//! workspace-level fault battery, downstream crates, and ad-hoc operational
//! drills can all drive them; none of them costs anything unless
//! constructed.

use std::io::{Error, ErrorKind, Read, Result as IoResult, Write};

/// A seeded deterministic fault schedule.
///
/// Internally a SplitMix64 stream: cheap, well distributed, and — most
/// importantly — identical on every platform and every run, so a fault
/// interleaving found by the multi-seed stress job is reproducible from its
/// seed alone.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
}

impl FaultPlan {
    /// A plan deriving every schedule from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value of the schedule stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be positive).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction: unbiased enough for fault scheduling and
        // branch-free.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// `true` with probability `1/one_in` (`one_in` must be positive).
    ///
    /// # Panics
    /// Panics if `one_in == 0`.
    pub fn coin(&mut self, one_in: u64) -> bool {
        self.next_below(one_in) == 0
    }
}

/// The typed faults a sharded-ingestion worker can be instructed to exhibit
/// through the sharded engine's supervision API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkerFault {
    /// The worker panics when it processes the fault message, modelling a
    /// bug or abort inside the per-shard sampler.
    Panic,
    /// The worker sleeps for this many milliseconds before processing any
    /// further traffic, modelling a stalled shard (slow disk, scheduler
    /// starvation, a lock convoy). Bounded so fault tests terminate.
    Stall {
        /// How long the worker stays unresponsive.
        millis: u64,
    },
}

/// A writer that forwards faithfully until `limit` bytes have been written,
/// then fails every further write with `kind`.
///
/// What reached the inner writer is exactly the prefix a crash at byte
/// offset `limit` would have left on disk, which is how the fault battery
/// produces torn snapshot files at every offset.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    remaining: u64,
    kind: ErrorKind,
    tripped: bool,
}

impl<W: Write> FailingWriter<W> {
    /// Fails with `kind` once `limit` bytes have passed through.
    #[must_use]
    pub fn new(inner: W, limit: u64, kind: ErrorKind) -> Self {
        Self { inner, remaining: limit, kind, tripped: false }
    }

    /// `true` once the fault has fired at least once.
    #[must_use]
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Unwraps the inner writer (the torn prefix lives in it).
    #[must_use]
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> IoResult<usize> {
        if self.remaining == 0 && !buf.is_empty() {
            self.tripped = true;
            return Err(Error::new(self.kind, "injected write fault"));
        }
        let take = buf.len().min(usize::try_from(self.remaining).unwrap_or(usize::MAX));
        let written = self.inner.write(&buf[..take])?;
        self.remaining -= written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> IoResult<()> {
        self.inner.flush()
    }
}

/// A reader that yields faithfully until `limit` bytes have been read, then
/// fails every further read with `kind`.
#[derive(Debug)]
pub struct FailingReader<R> {
    inner: R,
    remaining: u64,
    kind: ErrorKind,
}

impl<R: Read> FailingReader<R> {
    /// Fails with `kind` once `limit` bytes have been served.
    #[must_use]
    pub fn new(inner: R, limit: u64, kind: ErrorKind) -> Self {
        Self { inner, remaining: limit, kind }
    }
}

impl<R: Read> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> IoResult<usize> {
        if self.remaining == 0 && !buf.is_empty() {
            return Err(Error::new(self.kind, "injected read fault"));
        }
        let take = buf.len().min(usize::try_from(self.remaining).unwrap_or(usize::MAX));
        let read = self.inner.read(&mut buf[..take])?;
        self.remaining -= read as u64;
        Ok(read)
    }
}

/// A writer that accepts at most `chunk` bytes per call — every call makes
/// progress, but never as much as asked, exercising partial-write loops.
#[derive(Debug)]
pub struct ShortWriter<W> {
    inner: W,
    chunk: usize,
}

impl<W: Write> ShortWriter<W> {
    /// Writes at most `chunk` bytes per call.
    ///
    /// # Panics
    /// Panics if `chunk == 0` (a zero-progress writer violates the `Write`
    /// contract and would loop forever).
    #[must_use]
    pub fn new(inner: W, chunk: usize) -> Self {
        assert!(chunk > 0, "a short writer must still make progress");
        Self { inner, chunk }
    }

    /// Unwraps the inner writer.
    #[must_use]
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ShortWriter<W> {
    fn write(&mut self, buf: &[u8]) -> IoResult<usize> {
        let take = buf.len().min(self.chunk);
        self.inner.write(&buf[..take])
    }

    fn flush(&mut self) -> IoResult<()> {
        self.inner.flush()
    }
}

/// A reader that serves at most `chunk` bytes per call (`chunk = 1` is the
/// classic 1-byte-at-a-time reader every streaming decoder must tolerate).
#[derive(Debug)]
pub struct ShortReader<R> {
    inner: R,
    chunk: usize,
}

impl<R: Read> ShortReader<R> {
    /// Reads at most `chunk` bytes per call.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    #[must_use]
    pub fn new(inner: R, chunk: usize) -> Self {
        assert!(chunk > 0, "a short reader must still make progress");
        Self { inner, chunk }
    }
}

impl<R: Read> Read for ShortReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> IoResult<usize> {
        let take = buf.len().min(self.chunk);
        self.inner.read(&mut buf[..take])
    }
}

/// A writer that fails with [`ErrorKind::Interrupted`] on a seeded schedule
/// (roughly one call in `one_in`), and forwards faithfully otherwise.
///
/// `Interrupted` is the one I/O error the `Write`/`Read` contracts declare
/// retryable; robust codecs must absorb it without corrupting the stream.
#[derive(Debug)]
pub struct InterruptingWriter<W> {
    inner: W,
    plan: FaultPlan,
    one_in: u64,
}

impl<W: Write> InterruptingWriter<W> {
    /// Interrupts roughly one call in `one_in`, on the schedule of `plan`.
    ///
    /// # Panics
    /// Panics if `one_in == 0`.
    #[must_use]
    pub fn new(inner: W, plan: FaultPlan, one_in: u64) -> Self {
        assert!(one_in > 0, "the interruption rate must be positive");
        Self { inner, plan, one_in }
    }

    /// Unwraps the inner writer.
    #[must_use]
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for InterruptingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> IoResult<usize> {
        if self.plan.coin(self.one_in) {
            return Err(Error::new(ErrorKind::Interrupted, "injected interruption"));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> IoResult<()> {
        self.inner.flush()
    }
}

/// A reader that fails with [`ErrorKind::Interrupted`] on a seeded schedule
/// (roughly one call in `one_in`), and forwards faithfully otherwise.
#[derive(Debug)]
pub struct InterruptingReader<R> {
    inner: R,
    plan: FaultPlan,
    one_in: u64,
}

impl<R: Read> InterruptingReader<R> {
    /// Interrupts roughly one call in `one_in`, on the schedule of `plan`.
    ///
    /// # Panics
    /// Panics if `one_in == 0`.
    #[must_use]
    pub fn new(inner: R, plan: FaultPlan, one_in: u64) -> Self {
        assert!(one_in > 0, "the interruption rate must be positive");
        Self { inner, plan, one_in }
    }
}

impl<R: Read> Read for InterruptingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> IoResult<usize> {
        if self.plan.coin(self.one_in) {
            return Err(Error::new(ErrorKind::Interrupted, "injected interruption"));
        }
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_is_deterministic_per_seed() {
        let mut a = FaultPlan::new(42);
        let mut b = FaultPlan::new(42);
        let mut c = FaultPlan::new(43);
        let from_a: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let from_b: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let from_c: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(from_a, from_b);
        assert_ne!(from_a, from_c);
        let mut bounded = FaultPlan::new(7);
        for _ in 0..1000 {
            assert!(bounded.next_below(13) < 13);
        }
    }

    #[test]
    fn coin_rate_is_roughly_one_in_n() {
        let mut plan = FaultPlan::new(5);
        let hits = (0..10_000).filter(|_| plan.coin(4)).count();
        assert!((2000..3000).contains(&hits), "one-in-4 coin hit {hits}/10000");
    }

    #[test]
    fn failing_writer_keeps_the_exact_prefix() {
        for limit in 0..16u64 {
            let mut writer = FailingWriter::new(Vec::new(), limit, ErrorKind::BrokenPipe);
            let payload: Vec<u8> = (0..16).collect();
            let result = writer.write_all(&payload);
            assert!(result.is_err(), "limit {limit}");
            assert_eq!(result.unwrap_err().kind(), ErrorKind::BrokenPipe);
            assert!(writer.tripped());
            assert_eq!(writer.into_inner(), payload[..limit as usize].to_vec());
        }
    }

    #[test]
    fn failing_reader_serves_then_fails() {
        let payload: Vec<u8> = (0..16).collect();
        let mut reader = FailingReader::new(payload.as_slice(), 10, ErrorKind::UnexpectedEof);
        let mut first = [0u8; 10];
        reader.read_exact(&mut first).unwrap();
        assert_eq!(first, payload[..10]);
        let mut more = [0u8; 1];
        assert_eq!(reader.read(&mut more).unwrap_err().kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn short_wrappers_still_complete_transfers() {
        let payload: Vec<u8> = (0..255).collect();
        let mut writer = ShortWriter::new(Vec::new(), 1);
        writer.write_all(&payload).unwrap();
        assert_eq!(writer.into_inner(), payload);

        let mut reader = ShortReader::new(payload.as_slice(), 1);
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn interrupting_wrappers_only_emit_interrupted() {
        let payload: Vec<u8> = (0..100).collect();
        let mut writer = InterruptingWriter::new(Vec::new(), FaultPlan::new(3), 2);
        // `write_all` retries `Interrupted` per its contract, so the payload
        // must arrive intact despite the injected noise.
        writer.write_all(&payload).unwrap();
        assert_eq!(writer.into_inner(), payload);

        let mut reader = InterruptingReader::new(payload.as_slice(), FaultPlan::new(9), 2);
        let mut out = Vec::new();
        let mut buf = [0u8; 7];
        loop {
            match reader.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) => assert_eq!(e.kind(), ErrorKind::Interrupted),
            }
        }
        assert_eq!(out, payload);
    }
}
