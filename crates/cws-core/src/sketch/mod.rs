//! Single-assignment sketches: bottom-k, Poisson-τ and k-mins samples.
//!
//! These are the building blocks of Section 3: weighted samples of a single
//! weighted set, defined through a random rank assignment. Multi-assignment
//! summaries ([`crate::summary`]) embed one such sketch per weight
//! assignment.

pub mod bottomk;
pub mod kmins;
pub mod poisson;

pub use bottomk::{union_max_sketch, BottomKSketch, SketchEntry};
pub use kmins::{kmins_sketches, KMinsSketch};
pub use poisson::{threshold_for_expected_size, PoissonSketch};
