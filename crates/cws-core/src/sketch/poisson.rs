//! Poisson-τ sketches.
//!
//! A Poisson-τ sample contains every key whose rank value falls below the
//! fixed threshold `τ`; inclusions of different keys are independent and the
//! expected sample size is `Σ_i F_{w(i)}(τ)` (Section 3). With IPPS ranks this
//! is inclusion-probability-proportional-to-size sampling.

use cws_hash::SeedSequence;

use crate::ranks::RankFamily;
use crate::sketch::bottomk::SketchEntry;
use crate::weights::{Key, WeightedSet};

/// A Poisson-τ sketch of a single weighted set.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonSketch {
    tau: f64,
    entries: Vec<SketchEntry>,
}

impl PoissonSketch {
    /// Builds a sketch from `(key, rank, weight)` triples, keeping every key
    /// with `rank < tau`.
    ///
    /// # Panics
    /// Panics if `tau` is not positive.
    #[must_use]
    pub fn from_ranked<I>(tau: f64, ranked: I) -> Self
    where
        I: IntoIterator<Item = (Key, f64, f64)>,
    {
        assert!(tau > 0.0, "threshold tau must be positive");
        let mut entries: Vec<SketchEntry> = ranked
            .into_iter()
            .filter(|&(_, rank, _)| rank < tau)
            .map(|(key, rank, weight)| SketchEntry { key, rank, weight })
            .collect();
        entries.sort_unstable_by(|a, b| a.rank.total_cmp(&b.rank).then_with(|| a.key.cmp(&b.key)));
        Self { tau, entries }
    }

    /// Samples a weighted set with expected sample size `expected_size`,
    /// using shared-seed ranks from `seeds`.
    ///
    /// The threshold τ is chosen so that `Σ_i F_{w(i)}(τ) = expected_size`
    /// (capped at the number of positive-weight keys).
    #[must_use]
    pub fn sample(
        set: &WeightedSet,
        expected_size: f64,
        family: RankFamily,
        seeds: &SeedSequence,
    ) -> Self {
        let weights: Vec<f64> = set.iter().map(|(_, w)| w).collect();
        let tau = threshold_for_expected_size(&weights, family, expected_size);
        Self::from_ranked(
            tau,
            set.iter().map(|(key, weight)| {
                (key, family.rank_from_seed(weight, seeds.shared_seed(key)), weight)
            }),
        )
    }

    /// The sampling threshold τ.
    #[must_use]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The sampled entries, sorted by increasing rank.
    #[must_use]
    pub fn entries(&self) -> &[SketchEntry] {
        &self.entries
    }

    /// Number of sampled keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no key was sampled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` was sampled.
    #[must_use]
    pub fn contains(&self, key: Key) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }
}

/// Computes the threshold τ for which the expected Poisson sample size
/// `Σ_i F_{w_i}(τ)` equals `expected_size`.
///
/// If `expected_size` is at least the number of positive weights, `+∞` is
/// returned (every positive-weight key is sampled with probability 1).
///
/// # Panics
/// Panics if `expected_size` is not positive.
#[must_use]
pub fn threshold_for_expected_size(weights: &[f64], family: RankFamily, expected_size: f64) -> f64 {
    assert!(expected_size > 0.0, "expected size must be positive");
    let positive: Vec<f64> = weights.iter().copied().filter(|&w| w > 0.0).collect();
    if positive.is_empty() {
        return f64::INFINITY;
    }
    if expected_size >= positive.len() as f64 {
        return f64::INFINITY;
    }
    let expected =
        |tau: f64| -> f64 { positive.iter().map(|&w| family.inclusion_probability(w, tau)).sum() };
    // Bracket the root: expected(tau) is continuous and non-decreasing in tau.
    let mut hi = 1.0 / positive.iter().copied().fold(f64::INFINITY, f64::min);
    let mut guard = 0;
    while expected(hi) < expected_size {
        hi *= 2.0;
        guard += 1;
        assert!(guard < 200, "failed to bracket Poisson threshold");
    }
    let mut lo = 0.0;
    // Bisection; 80 iterations give full f64 precision for any bracket.
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) < expected_size {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_reproduces_figure1_values() {
        // Figure 1: weights 20,10,12,20,10,10 with IPPS ranks; expected size 1
        // gives tau = 1/82 (total weight 82), since all inclusion
        // probabilities stay below 1.
        let weights = [20.0, 10.0, 12.0, 20.0, 10.0, 10.0];
        for k in 1..=3usize {
            let tau = threshold_for_expected_size(&weights, RankFamily::Ipps, k as f64);
            assert!((tau - k as f64 / 82.0).abs() < 1e-9, "k={k} tau={tau}");
        }
    }

    #[test]
    fn threshold_expected_size_attained() {
        let weights: Vec<f64> = (1..=50).map(f64::from).collect();
        for family in [RankFamily::Exp, RankFamily::Ipps] {
            for &k in &[1.0, 5.0, 20.0, 49.0] {
                let tau = threshold_for_expected_size(&weights, family, k);
                let expected: f64 =
                    weights.iter().map(|&w| family.inclusion_probability(w, tau)).sum();
                assert!((expected - k).abs() < 1e-6, "{family:?} k={k} got {expected}");
            }
        }
    }

    #[test]
    fn threshold_saturates_to_infinity() {
        let weights = [1.0, 2.0, 3.0];
        let tau = threshold_for_expected_size(&weights, RankFamily::Ipps, 3.0);
        assert!(tau.is_infinite());
        let tau = threshold_for_expected_size(&weights, RankFamily::Ipps, 10.0);
        assert!(tau.is_infinite());
        let tau = threshold_for_expected_size(&[0.0, 0.0], RankFamily::Ipps, 1.0);
        assert!(tau.is_infinite());
    }

    #[test]
    fn figure1_poisson_sample_is_key_i1() {
        // Figure 1: with seeds u = (0.22, 0.75, 0.07, 0.92, 0.55, 0.37) and
        // IPPS ranks, the Poisson samples of expected size 1..3 all contain
        // only key i1 (ranks 0.011, 0.075, 0.00583, 0.046, 0.055, 0.037 vs
        // tau = k/82).
        let weights = [20.0, 10.0, 12.0, 20.0, 10.0, 10.0];
        let seeds = [0.22, 0.75, 0.07, 0.92, 0.55, 0.37];
        let ranked: Vec<(Key, f64, f64)> = (0..6)
            .map(|i| {
                (i as Key + 1, RankFamily::Ipps.rank_from_seed(weights[i], seeds[i]), weights[i])
            })
            .collect();
        // Note: the paper's example lists rank 0.0583 for i3 (seed 0.07,
        // weight 12 gives 0.005833); the figure's sample outcome {i1} for
        // k=1,2,3 corresponds to the printed ranks, so we reproduce it with
        // the printed rank for i3.
        let mut ranked = ranked;
        ranked[2].1 = 0.0583;
        for k in 1..=3 {
            let tau = k as f64 / 82.0;
            let sketch = PoissonSketch::from_ranked(tau, ranked.clone());
            let keys: Vec<Key> = sketch.entries().iter().map(|e| e.key).collect();
            assert_eq!(keys, vec![1], "k={k}");
        }
    }

    #[test]
    fn expected_size_statistical() {
        // Over many independent seed sequences, the average sample size should
        // be close to the requested expected size.
        let set = WeightedSet::from_pairs((0u64..200).map(|k| (k, ((k % 13) + 1) as f64)));
        let runs = 300;
        let target = 20.0;
        let mut total = 0usize;
        for run in 0..runs {
            let seeds = SeedSequence::new(1000 + run);
            let sketch = PoissonSketch::sample(&set, target, RankFamily::Ipps, &seeds);
            total += sketch.len();
        }
        let mean = total as f64 / runs as f64;
        assert!((mean - target).abs() < 1.5, "mean sample size {mean}");
    }

    #[test]
    fn membership_and_accessors() {
        let sketch =
            PoissonSketch::from_ranked(0.5, vec![(1, 0.1, 5.0), (2, 0.9, 1.0), (3, 0.3, 2.0)]);
        assert_eq!(sketch.len(), 2);
        assert!(sketch.contains(1));
        assert!(sketch.contains(3));
        assert!(!sketch.contains(2));
        assert_eq!(sketch.tau(), 0.5);
        assert!(!sketch.is_empty());
        // Sorted by rank.
        assert_eq!(sketch.entries()[0].key, 1);
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn non_positive_tau_rejected() {
        let _ = PoissonSketch::from_ranked(0.0, vec![(1, 0.1, 5.0)]);
    }
}
