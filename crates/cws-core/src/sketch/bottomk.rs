//! Bottom-k (order) sketches.
//!
//! A bottom-k sketch of a weighted set contains the `k` keys with the
//! smallest rank values, their rank and weight, and the `(k+1)`-st smallest
//! rank value `r_{k+1}(I)` (Section 3). Bottom-k sketches with IPPS ranks are
//! *priority samples*; with EXP ranks they are successive weighted sampling
//! without replacement.

use std::collections::BinaryHeap;

use cws_hash::SeedSequence;

use crate::ranks::RankFamily;
use crate::weights::{Key, WeightedSet};

/// One sampled key inside a sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchEntry {
    /// The sampled key.
    pub key: Key,
    /// Its rank value under this assignment.
    pub rank: f64,
    /// Its weight under this assignment.
    pub weight: f64,
}

/// Ordering adaptor so entries can live in a max-heap keyed by rank.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ByRank(SketchEntry);

impl Eq for ByRank {}

impl PartialOrd for ByRank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ByRank {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.rank.total_cmp(&other.0.rank).then_with(|| self.0.key.cmp(&other.0.key))
    }
}

/// A bottom-k sketch of a single weighted set.
#[derive(Debug, Clone, PartialEq)]
pub struct BottomKSketch {
    k: usize,
    entries: Vec<SketchEntry>,
    next_rank: f64,
}

impl BottomKSketch {
    /// Builds a sketch from `(key, rank, weight)` triples.
    ///
    /// Keys with infinite rank (zero weight) are never sampled. Entries are
    /// retained for the `k` smallest ranks; `r_{k+1}(I)` is recorded, and is
    /// `+∞` when fewer than `k + 1` keys have a finite rank.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn from_ranked<I>(k: usize, ranked: I) -> Self
    where
        I: IntoIterator<Item = (Key, f64, f64)>,
    {
        assert!(k > 0, "sample size k must be positive");
        // Max-heap of the (k + 1) smallest-ranked entries seen so far.
        let mut heap: BinaryHeap<ByRank> = BinaryHeap::with_capacity(k + 2);
        for (key, rank, weight) in ranked {
            if !rank.is_finite() {
                continue;
            }
            debug_assert!(weight > 0.0, "finite rank implies positive weight");
            heap.push(ByRank(SketchEntry { key, rank, weight }));
            if heap.len() > k + 1 {
                heap.pop();
            }
        }
        // Pre-size to the k + 1 retained entries (the heap never holds more)
        // so finalize performs no reallocation, and sort without stability —
        // the `(rank, key)` sort key is a total order over the entries.
        let mut entries: Vec<SketchEntry> = Vec::with_capacity(k + 1);
        entries.extend(heap.into_iter().map(|ByRank(e)| e));
        entries.sort_unstable_by(|a, b| a.rank.total_cmp(&b.rank).then_with(|| a.key.cmp(&b.key)));
        let next_rank =
            if entries.len() > k { entries.pop().expect("len > k").rank } else { f64::INFINITY };
        Self { k, entries, next_rank }
    }

    /// Builds a sketch from `(key, rank, weight)` triples plus *tail* rank
    /// candidates: ranks known to exist in the population whose keys are
    /// unavailable (the `r_{k+1}` values of partial sketches being merged).
    ///
    /// Tail ranks participate only in determining `r_{k+1}` of the result;
    /// they can never become entries. They also never need to displace an
    /// entry: a partial sketch's `r_{k+1}` exceeds all of that partial's
    /// entry ranks, so if it were smaller than one of the union's bottom-k
    /// ranks, its own partial's `k` entries would already fill the union
    /// sketch — a contradiction. Hence the union's `r_{k+1}` is the smaller
    /// of the entry-based `r_{k+1}` and the smallest tail rank.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn from_ranked_with_tail<I, T>(k: usize, ranked: I, tail_ranks: T) -> Self
    where
        I: IntoIterator<Item = (Key, f64, f64)>,
        T: IntoIterator<Item = f64>,
    {
        let mut sketch = Self::from_ranked(k, ranked);
        let tail_min = tail_ranks.into_iter().fold(f64::INFINITY, f64::min);
        if tail_min < sketch.next_rank {
            debug_assert!(
                sketch.entries.last().is_none_or(|last| last.rank <= tail_min),
                "a tail rank may not undercut a retained entry"
            );
            sketch.next_rank = tail_min;
        }
        sketch
    }

    /// Reassembles a sketch from already-sorted parts — the decoding path of
    /// the binary summary codec, which must reproduce a previously
    /// finalized sketch bit-for-bit without re-ranking anything.
    ///
    /// # Panics
    /// Panics if `k == 0`, more than `k` entries are given, the entries are
    /// not strictly ascending in the `(rank, key)` total order, any rank is
    /// non-finite, any weight is not strictly positive and finite, or
    /// `next_rank` is NaN or smaller than the last entry's rank. (The codec
    /// validates these invariants first and reports them as typed errors;
    /// the panics here are a second line of defense for direct callers.)
    #[must_use]
    pub fn from_sorted_parts(k: usize, entries: Vec<SketchEntry>, next_rank: f64) -> Self {
        assert!(k > 0, "sample size k must be positive");
        assert!(entries.len() <= k, "a bottom-k sketch holds at most k entries");
        for pair in entries.windows(2) {
            let order =
                pair[0].rank.total_cmp(&pair[1].rank).then_with(|| pair[0].key.cmp(&pair[1].key));
            assert!(order == std::cmp::Ordering::Less, "entries must be sorted by (rank, key)");
        }
        assert!(
            entries.iter().all(|e| e.rank.is_finite() && e.weight.is_finite() && e.weight > 0.0),
            "entries must carry finite ranks and positive weights"
        );
        assert!(!next_rank.is_nan(), "next rank must not be NaN");
        assert!(
            entries.last().is_none_or(|last| last.rank <= next_rank),
            "next rank may not undercut a retained entry"
        );
        Self { k, entries, next_rank }
    }

    /// Samples a weighted set using shared-seed ranks from `seeds`.
    ///
    /// This is the single-assignment convenience constructor (used by the
    /// worked examples and the stream-sampler tests); multi-assignment
    /// summaries are built through [`crate::summary`].
    #[must_use]
    pub fn sample(set: &WeightedSet, k: usize, family: RankFamily, seeds: &SeedSequence) -> Self {
        Self::from_ranked(
            k,
            set.iter().map(|(key, weight)| {
                (key, family.rank_from_seed(weight, seeds.shared_seed(key)), weight)
            }),
        )
    }

    /// The nominal sample size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The sampled entries, sorted by increasing rank (at most `k`).
    #[must_use]
    pub fn entries(&self) -> &[SketchEntry] {
        &self.entries
    }

    /// Number of sampled keys (`min(k, #positive-weight keys)`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no key was sampled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `r_{k+1}(I)` — the `(k+1)`-st smallest rank in the population
    /// (`+∞` if fewer than `k + 1` keys have positive weight).
    #[must_use]
    pub fn next_rank(&self) -> f64 {
        self.next_rank
    }

    /// `r_k(I)` — the `k`-th smallest rank in the population (`+∞` if fewer
    /// than `k` keys have positive weight).
    #[must_use]
    pub fn kth_rank(&self) -> f64 {
        if self.entries.len() == self.k {
            self.entries[self.k - 1].rank
        } else {
            f64::INFINITY
        }
    }

    /// Whether `key` was sampled.
    #[must_use]
    pub fn contains(&self, key: Key) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }

    /// The rank of `key` if it was sampled.
    #[must_use]
    pub fn rank_of(&self, key: Key) -> Option<f64> {
        self.entries.iter().find(|e| e.key == key).map(|e| e.rank)
    }

    /// The weight recorded for `key` if it was sampled.
    #[must_use]
    pub fn weight_of(&self, key: Key) -> Option<f64> {
        self.entries.iter().find(|e| e.key == key).map(|e| e.weight)
    }

    /// `r_k(I \ {key})` — the conditioning threshold of the RC estimator:
    /// `r_{k+1}(I)` when `key` is in the sketch, `r_k(I)` otherwise.
    #[must_use]
    pub fn threshold_excluding(&self, key: Key) -> f64 {
        if self.contains(key) {
            self.next_rank
        } else {
            self.kth_rank()
        }
    }
}

/// Combines coordinated bottom-k sketches of assignments `R` into a bottom-k
/// sketch with respect to the maximum weight `w^(max R)` (Lemma 4.2).
///
/// The result contains the `k` distinct keys with the smallest rank observed
/// anywhere in the union of the input sketches. The weight recorded for each
/// key is the largest weight observed for it across the inputs; in the
/// dispersed model this equals `w^(max R)(i)` whenever the key is included in
/// the sketch of its maximizing assignment, which holds for every key the
/// lemma selects when ranks are consistent.
///
/// # Panics
/// Panics if `sketches` is empty or the sketches have different `k`.
#[must_use]
pub fn union_max_sketch(sketches: &[BottomKSketch]) -> BottomKSketch {
    assert!(!sketches.is_empty(), "at least one sketch is required");
    let k = sketches[0].k();
    assert!(sketches.iter().all(|s| s.k() == k), "all sketches must share the same k");

    let mut best: std::collections::HashMap<Key, SketchEntry> = std::collections::HashMap::new();
    for sketch in sketches {
        for entry in sketch.entries() {
            best.entry(entry.key)
                .and_modify(|cur| {
                    cur.rank = cur.rank.min(entry.rank);
                    cur.weight = cur.weight.max(entry.weight);
                })
                .or_insert(*entry);
        }
    }
    BottomKSketch::from_ranked(k, best.into_values().map(|e| (e.key, e.rank, e.weight)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordination::{CoordinationMode, RankGenerator};
    use crate::weights::MultiWeighted;

    fn ranked_fixture() -> Vec<(Key, f64, f64)> {
        vec![
            (1, 0.011, 20.0),
            (2, 0.075, 10.0),
            (3, 0.0583, 12.0),
            (4, 0.046, 20.0),
            (5, 0.055, 10.0),
            (6, 0.037, 10.0),
        ]
    }

    #[test]
    fn bottom_k_keeps_smallest_ranks() {
        let sketch = BottomKSketch::from_ranked(3, ranked_fixture());
        let keys: Vec<Key> = sketch.entries().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![1, 6, 4]);
        assert!((sketch.next_rank() - 0.055).abs() < 1e-12);
        assert!((sketch.kth_rank() - 0.046).abs() < 1e-12);
        assert_eq!(sketch.len(), 3);
    }

    #[test]
    fn bottom_k_smaller_population_than_k() {
        let sketch = BottomKSketch::from_ranked(10, ranked_fixture());
        assert_eq!(sketch.len(), 6);
        assert!(sketch.next_rank().is_infinite());
        assert!(sketch.kth_rank().is_infinite());
    }

    #[test]
    fn bottom_k_exactly_k_positive_keys() {
        let sketch = BottomKSketch::from_ranked(6, ranked_fixture());
        assert_eq!(sketch.len(), 6);
        assert!(sketch.next_rank().is_infinite());
        assert!((sketch.kth_rank() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_keys_never_sampled() {
        let mut ranked = ranked_fixture();
        ranked.push((7, f64::INFINITY, 0.0));
        let sketch = BottomKSketch::from_ranked(10, ranked);
        assert!(!sketch.contains(7));
    }

    #[test]
    fn threshold_excluding_matches_rank_conditioning() {
        let sketch = BottomKSketch::from_ranked(3, ranked_fixture());
        // Key 1 is in the sketch: threshold is r_{k+1}(I).
        assert_eq!(sketch.threshold_excluding(1), sketch.next_rank());
        // Key 2 is not: threshold is r_k(I).
        assert_eq!(sketch.threshold_excluding(2), sketch.kth_rank());
    }

    #[test]
    fn membership_helpers() {
        let sketch = BottomKSketch::from_ranked(3, ranked_fixture());
        assert!(sketch.contains(6));
        assert_eq!(sketch.rank_of(6), Some(0.037));
        assert_eq!(sketch.weight_of(6), Some(10.0));
        assert_eq!(sketch.rank_of(2), None);
        assert!(!sketch.is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = BottomKSketch::from_ranked(0, ranked_fixture());
    }

    #[test]
    fn sample_from_weighted_set_is_deterministic() {
        let set = WeightedSet::from_pairs((0u64..100).map(|k| (k, (k % 10 + 1) as f64)));
        let seeds = SeedSequence::new(8);
        let a = BottomKSketch::sample(&set, 10, RankFamily::Ipps, &seeds);
        let b = BottomKSketch::sample(&set, 10, RankFamily::Ipps, &seeds);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn union_max_sketch_matches_direct_max_sketch() {
        // Build coordinated sketches for 3 assignments and verify Lemma 4.2:
        // the union sketch contains the same keys as a bottom-k sketch of the
        // max weights using the minimum ranks.
        let mut builder = MultiWeighted::builder(3);
        for key in 0..300u64 {
            for b in 0..3usize {
                let w = ((key * (b as u64 + 3)) % 17) as f64;
                builder.add(key, b, w);
            }
        }
        let data = builder.build();
        let gen = RankGenerator::new(RankFamily::Ipps, CoordinationMode::SharedSeed, 77).unwrap();

        let k = 20;
        let mut sketches = Vec::new();
        for b in 0..3 {
            sketches.push(BottomKSketch::from_ranked(
                k,
                data.iter().map(|(key, wv)| (key, gen.rank_vector(key, wv)[b], wv[b])),
            ));
        }
        let union = union_max_sketch(&sketches);

        let direct = BottomKSketch::from_ranked(
            k,
            data.iter().map(|(key, wv)| {
                let ranks = gen.rank_vector(key, wv);
                let min_rank = ranks.iter().copied().fold(f64::INFINITY, f64::min);
                let max_w = wv.iter().copied().fold(0.0f64, f64::max);
                (key, min_rank, max_w)
            }),
        );

        let union_keys: Vec<Key> = union.entries().iter().map(|e| e.key).collect();
        let direct_keys: Vec<Key> = direct.entries().iter().map(|e| e.key).collect();
        assert_eq!(union_keys, direct_keys);
        for (u, d) in union.entries().iter().zip(direct.entries()) {
            assert_eq!(u.rank.to_bits(), d.rank.to_bits());
            assert_eq!(u.weight, d.weight);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sketch")]
    fn union_of_nothing_panics() {
        let _ = union_max_sketch(&[]);
    }
}
