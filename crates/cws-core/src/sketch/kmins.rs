//! k-mins sketches and the weighted Jaccard similarity estimator.
//!
//! A k-mins sketch applies `k` independent rank assignments to the weighted
//! set and records, for each, the key attaining the minimum rank (Section 3).
//! With EXP ranks each replica is a single weighted-sampling draw.
//!
//! Theorem 4.1: when the `k` rank assignments use *independent-differences
//! consistent* ranks across assignments, the probability that two
//! assignments share the same minimum-rank key equals their **weighted
//! Jaccard similarity** `Σ_i min(w1, w2) / Σ_i max(w1, w2)` — so the fraction
//! of agreeing replicas is an unbiased estimator of it.

use crate::coordination::RankGenerator;
use crate::weights::{Key, MultiWeighted};

/// A k-mins sketch of one weight assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct KMinsSketch {
    /// Per replica: the minimum-rank key and its rank, or `None` when the
    /// assignment has no positive-weight key.
    entries: Vec<Option<(Key, f64)>>,
}

impl KMinsSketch {
    /// Number of replicas `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.entries.len()
    }

    /// The minimum-rank key of replica `j`, if any.
    #[must_use]
    pub fn min_key(&self, replica: usize) -> Option<Key> {
        self.entries.get(replica).and_then(|e| e.map(|(key, _)| key))
    }

    /// The replica entries.
    #[must_use]
    pub fn entries(&self) -> &[Option<(Key, f64)>] {
        &self.entries
    }

    /// Estimates the weighted Jaccard similarity between the assignments
    /// summarized by `self` and `other` as the fraction of replicas whose
    /// minimum-rank key agrees (Theorem 4.1; requires sketches built from the
    /// same coordinated rank assignments).
    ///
    /// # Panics
    /// Panics if the sketches have different numbers of replicas or zero
    /// replicas.
    #[must_use]
    pub fn jaccard_estimate(&self, other: &KMinsSketch) -> f64 {
        assert_eq!(self.k(), other.k(), "sketches must have the same number of replicas");
        assert!(self.k() > 0, "at least one replica is required");
        let agree = self
            .entries
            .iter()
            .zip(&other.entries)
            .filter(|(a, b)| match (a, b) {
                (Some((ka, _)), Some((kb, _))) => ka == kb,
                _ => false,
            })
            .count();
        agree as f64 / self.k() as f64
    }
}

/// Builds coordinated k-mins sketches, one per weight assignment of `data`.
///
/// Replica `j` uses the rank generator `generator.derive(j)`, so all
/// assignments share the same `k` rank assignments — the coordination that
/// Theorem 4.1 requires.
#[must_use]
#[allow(clippy::needless_range_loop)] // replica indexes a column across all assignments
pub fn kmins_sketches(
    data: &MultiWeighted,
    k: usize,
    generator: &RankGenerator,
) -> Vec<KMinsSketch> {
    assert!(k > 0, "number of replicas k must be positive");
    let assignments = data.num_assignments();
    let mut entries: Vec<Vec<Option<(Key, f64)>>> = vec![vec![None; k]; assignments];
    for replica in 0..k {
        let gen = generator.derive(replica as u64 + 1);
        for (key, weights) in data.iter() {
            let ranks = gen.rank_vector(key, weights);
            for (b, &rank) in ranks.iter().enumerate() {
                if !rank.is_finite() {
                    continue;
                }
                match entries[b][replica] {
                    Some((_, best)) if best <= rank => {}
                    _ => entries[b][replica] = Some((key, rank)),
                }
            }
        }
    }
    entries.into_iter().map(|entries| KMinsSketch { entries }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::weighted_jaccard;
    use crate::coordination::CoordinationMode;
    use crate::ranks::RankFamily;

    fn fixture(correlated: bool) -> MultiWeighted {
        let mut builder = MultiWeighted::builder(2);
        for key in 0..200u64 {
            let w1 = ((key % 13) + 1) as f64;
            let w2 =
                if correlated { w1 * 1.2 + ((key % 3) as f64) } else { ((key % 7) + 1) as f64 };
            builder.add(key, 0, w1);
            builder.add(key, 1, w2);
        }
        builder.build()
    }

    #[test]
    fn sketch_shape() {
        let data = fixture(true);
        let gen = RankGenerator::new(RankFamily::Exp, CoordinationMode::IndependentDifferences, 11)
            .unwrap();
        let sketches = kmins_sketches(&data, 32, &gen);
        assert_eq!(sketches.len(), 2);
        assert_eq!(sketches[0].k(), 32);
        assert!(sketches[0].min_key(0).is_some());
        assert!(sketches[0].entries().iter().all(Option::is_some));
    }

    #[test]
    fn empty_assignment_yields_none_entries() {
        let mut builder = MultiWeighted::builder(2);
        builder.add(1, 0, 5.0); // assignment 1 stays empty
        let data = builder.build();
        let gen = RankGenerator::new(RankFamily::Exp, CoordinationMode::SharedSeed, 1).unwrap();
        let sketches = kmins_sketches(&data, 4, &gen);
        assert!(sketches[0].entries().iter().all(Option::is_some));
        assert!(sketches[1].entries().iter().all(Option::is_none));
        assert_eq!(sketches[0].jaccard_estimate(&sketches[1]), 0.0);
    }

    #[test]
    fn jaccard_estimate_is_close_to_truth_theorem_4_1() {
        // Theorem 4.1: with independent-differences consistent ranks, the
        // agreement probability equals the weighted Jaccard similarity.
        let data = fixture(true);
        let truth = weighted_jaccard(&data, 0, 1, |_| true);
        let gen =
            RankGenerator::new(RankFamily::Exp, CoordinationMode::IndependentDifferences, 2024)
                .unwrap();
        let k = 4000;
        let sketches = kmins_sketches(&data, k, &gen);
        let estimate = sketches[0].jaccard_estimate(&sketches[1]);
        assert!((estimate - truth).abs() < 0.03, "estimate {estimate} vs truth {truth}");
    }

    #[test]
    fn identical_assignments_have_jaccard_one() {
        let mut builder = MultiWeighted::builder(2);
        for key in 0..50u64 {
            let w = (key + 1) as f64;
            builder.add(key, 0, w);
            builder.add(key, 1, w);
        }
        let data = builder.build();
        for mode in [CoordinationMode::SharedSeed, CoordinationMode::IndependentDifferences] {
            let gen = RankGenerator::new(RankFamily::Exp, mode, 3).unwrap();
            let sketches = kmins_sketches(&data, 64, &gen);
            assert_eq!(sketches[0].jaccard_estimate(&sketches[1]), 1.0, "{mode:?}");
        }
    }

    #[test]
    fn independent_ranks_underestimate_similarity() {
        // The motivating failure of non-coordinated samples: two nearly
        // identical assignments produce nearly disjoint independent samples.
        let data = fixture(true);
        let truth = weighted_jaccard(&data, 0, 1, |_| true);
        let gen = RankGenerator::new(RankFamily::Exp, CoordinationMode::Independent, 5).unwrap();
        let sketches = kmins_sketches(&data, 2000, &gen);
        let estimate = sketches[0].jaccard_estimate(&sketches[1]);
        assert!(estimate < truth * 0.3, "estimate {estimate} vs truth {truth}");
    }

    #[test]
    #[should_panic(expected = "same number of replicas")]
    fn mismatched_k_panics() {
        let data = fixture(true);
        let gen = RankGenerator::new(RankFamily::Exp, CoordinationMode::SharedSeed, 1).unwrap();
        let a = kmins_sketches(&data, 4, &gen);
        let b = kmins_sketches(&data, 8, &gen);
        let _ = a[0].jaccard_estimate(&b[1]);
    }
}
