//! Rank assignments for multi-assignment data: independent, shared-seed
//! consistent, and independent-differences consistent ranks (Section 4).
//!
//! A random rank assignment for `(I, W)` gives every key a *rank vector* with
//! one entry per assignment. The per-assignment marginals are always the
//! single-assignment rank distributions of [`RankFamily`]; what differs is the
//! joint distribution across assignments:
//!
//! * [`CoordinationMode::Independent`] — entries are independent; this is what
//!   you get from maintaining unrelated samples per assignment, and is the
//!   baseline the paper improves upon.
//! * [`CoordinationMode::SharedSeed`] — all entries are derived from the same
//!   uniform seed `u(i)`, making ranks *consistent* (a larger weight always
//!   has a smaller rank). Shared-seed coordination minimizes the expected
//!   number of distinct keys in the union of the sketches (Theorem 4.2).
//! * [`CoordinationMode::IndependentDifferences`] — EXP-rank-specific
//!   consistent construction in which the rank of each assignment is the
//!   minimum of independent exponentials over the "weight increments" of the
//!   key; it generalizes the classic min-hash Jaccard estimator
//!   (Theorem 4.1).

use cws_hash::SeedSequence;

use crate::error::{CwsError, Result};
use crate::ranks::RankFamily;
use crate::weights::Key;

/// Joint distribution of rank vectors across weight assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoordinationMode {
    /// Independent ranks per assignment (non-coordinated sketches).
    Independent,
    /// Shared-seed consistent ranks: `r^(b)(i) = F^{-1}_{w^(b)(i)}(u(i))`.
    SharedSeed,
    /// Independent-differences consistent ranks (EXP ranks only).
    IndependentDifferences,
}

impl CoordinationMode {
    /// `true` for the two consistent (coordinated) modes.
    #[must_use]
    pub fn is_coordinated(self) -> bool {
        !matches!(self, CoordinationMode::Independent)
    }

    /// Human-readable name used by the experiment harness.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CoordinationMode::Independent => "independent",
            CoordinationMode::SharedSeed => "shared-seed",
            CoordinationMode::IndependentDifferences => "independent-differences",
        }
    }
}

/// Generates rank values / rank vectors for keys.
///
/// A `RankGenerator` is a *pure function* of its master seed: the same
/// `(seed, key, weights)` always produces the same ranks. This is what allows
/// dispersed processing sites to agree on the sample without communication
/// and what makes Monte-Carlo evaluation reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankGenerator {
    family: RankFamily,
    mode: CoordinationMode,
    seeds: SeedSequence,
}

impl RankGenerator {
    /// Creates a generator.
    ///
    /// # Errors
    /// Returns [`CwsError::IndependentDifferencesRequiresExp`] when the
    /// independent-differences mode is combined with IPPS ranks.
    pub fn new(family: RankFamily, mode: CoordinationMode, master_seed: u64) -> Result<Self> {
        Self::with_seed_sequence(family, mode, SeedSequence::new(master_seed))
    }

    /// Creates a generator from an explicit [`SeedSequence`].
    ///
    /// # Errors
    /// Same as [`RankGenerator::new`].
    pub fn with_seed_sequence(
        family: RankFamily,
        mode: CoordinationMode,
        seeds: SeedSequence,
    ) -> Result<Self> {
        if mode == CoordinationMode::IndependentDifferences && family != RankFamily::Exp {
            return Err(CwsError::IndependentDifferencesRequiresExp);
        }
        Ok(Self { family, mode, seeds })
    }

    /// The rank family.
    #[must_use]
    pub fn family(&self) -> RankFamily {
        self.family
    }

    /// The coordination mode.
    #[must_use]
    pub fn mode(&self) -> CoordinationMode {
        self.mode
    }

    /// The underlying seed sequence.
    #[must_use]
    pub fn seed_sequence(&self) -> SeedSequence {
        self.seeds
    }

    /// Derives a generator for an unrelated repetition (Monte-Carlo run).
    #[must_use]
    pub fn derive(&self, run: u64) -> Self {
        Self { family: self.family, mode: self.mode, seeds: self.seeds.derive(run) }
    }

    /// The shared seed `u(i)` of a key (meaningful for
    /// [`CoordinationMode::SharedSeed`]).
    #[must_use]
    pub fn shared_seed(&self, key: Key) -> f64 {
        self.seeds.shared_seed(key)
    }

    /// Errors unless this generator can produce dispersed (per-assignment)
    /// ranks — the one place the "independent differences cannot be
    /// dispersed" error is constructed, shared by the scalar and batched
    /// ingestion paths.
    ///
    /// # Errors
    /// Returns [`CwsError::UnsupportedEstimator`] in independent-differences
    /// mode, which requires the full weight vector and therefore cannot be
    /// used with dispersed data (Section 4, "Computing coordinated
    /// sketches").
    #[inline]
    pub fn require_dispersable(&self) -> Result<()> {
        match self.mode {
            CoordinationMode::IndependentDifferences => Err(CwsError::UnsupportedEstimator {
                estimator: "dispersed_rank",
                reason: "independent-differences ranks require the full weight vector and are \
                         not suited for dispersed weights",
            }),
            CoordinationMode::SharedSeed | CoordinationMode::Independent => Ok(()),
        }
    }

    /// Rank of `key` under a single assignment, usable in the dispersed model
    /// where only `w^(b)(i)` is known to the processing site of assignment
    /// `b`.
    ///
    /// # Errors
    /// As [`RankGenerator::require_dispersable`].
    pub fn dispersed_rank(&self, key: Key, weight: f64, assignment: usize) -> Result<f64> {
        self.require_dispersable()?;
        match self.mode {
            CoordinationMode::SharedSeed => {
                Ok(self.family.rank_from_seed(weight, self.seeds.shared_seed(key)))
            }
            CoordinationMode::Independent => {
                Ok(self.family.rank_from_seed(weight, self.seeds.assignment_seed(key, assignment)))
            }
            CoordinationMode::IndependentDifferences => unreachable!("rejected above"),
        }
    }

    /// Fills `out[i]` with the weight-independent rank numerator of
    /// `keys[i]` under shared-seed coordination (`rank = out[i] / w` for
    /// both families, bit-identical to [`RankGenerator::dispersed_rank`];
    /// see [`RankFamily::rank_base`]).
    ///
    /// This is the one shared-seed base kernel of the batched ingestion
    /// paths — single- and multi-assignment samplers both call it, so the
    /// bit-exactness contract lives in one place.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn shared_rank_bases_into(&self, keys: &[Key], out: &mut [f64]) {
        assert_eq!(keys.len(), out.len(), "output lane length mismatch");
        for (slot, &key) in out.iter_mut().zip(keys) {
            *slot = self.family.rank_base(self.seeds.shared_seed(key));
        }
    }

    /// Fills `out[i]` with the weight-independent rank numerator of the key
    /// behind `pair_bases[i]` (from [`cws_hash::SeedSequence::
    /// pair_bases_into`]) under *independent* coordination for one
    /// assignment — the counterpart of
    /// [`RankGenerator::shared_rank_bases_into`], completing the hash-once
    /// fan-out without touching the keys again.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn assignment_rank_bases_into(
        &self,
        pair_bases: &[u64],
        assignment: usize,
        out: &mut [f64],
    ) {
        assert_eq!(pair_bases.len(), out.len(), "output lane length mismatch");
        for (slot, &pair_base) in out.iter_mut().zip(pair_bases) {
            *slot =
                self.family.rank_base(self.seeds.assignment_seed_from_base(pair_base, assignment));
        }
    }

    /// The full rank vector of a key given its weight vector.
    ///
    /// Zero weights map to rank `+∞`. The output has the same length and
    /// assignment order as `weights`.
    #[must_use]
    pub fn rank_vector(&self, key: Key, weights: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(weights.len());
        self.rank_vector_into(key, weights, &mut out);
        out
    }

    /// Writes the rank vector of a key into `out`, clearing and re-using its
    /// allocation — the hash-once hot path of multi-assignment ingestion.
    ///
    /// The key is hashed exactly once per call (its shared seed, or its
    /// pre-mixed per-assignment seed base) and the per-assignment rank
    /// computation fans out from that state. The values written are
    /// bit-identical to [`RankGenerator::rank_vector`] and, for the
    /// dispersable modes, to [`RankGenerator::dispersed_rank`] called per
    /// assignment.
    pub fn rank_vector_into(&self, key: Key, weights: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(weights.len());
        match self.mode {
            CoordinationMode::SharedSeed => {
                let u = self.seeds.shared_seed(key);
                out.extend(weights.iter().map(|&w| self.family.rank_from_seed(w, u)));
            }
            CoordinationMode::Independent => {
                let seeds = self.seeds.key_seeds(key);
                out.extend(
                    weights
                        .iter()
                        .enumerate()
                        .map(|(b, &w)| self.family.rank_from_seed(w, seeds.assignment_seed(b))),
                );
            }
            CoordinationMode::IndependentDifferences => {
                self.independent_differences_into(key, weights, out);
            }
        }
    }

    /// Independent-differences construction (Section 4): sort the positive
    /// weights in increasing order, draw `d_j ~ EXP[w_(j) - w_(j-1)]`
    /// independently, and give the assignment with the `j`-th smallest weight
    /// the rank `min_{a ≤ j} d_a`.
    fn independent_differences_into(&self, key: Key, weights: &[f64], ranks: &mut Vec<f64>) {
        // Keep the per-record sort allocation-free for realistic assignment
        // counts; only pathologically wide weight vectors fall back to the
        // heap.
        const STACK_ASSIGNMENTS: usize = 16;
        let mut stack_order = [0usize; STACK_ASSIGNMENTS];
        let mut heap_order = Vec::new();
        let order: &mut [usize] = if weights.len() <= STACK_ASSIGNMENTS {
            &mut stack_order[..weights.len()]
        } else {
            heap_order.resize(weights.len(), 0);
            &mut heap_order
        };
        for (index, slot) in order.iter_mut().enumerate() {
            *slot = index;
        }
        order.sort_unstable_by(|&a, &b| {
            weights[a].partial_cmp(&weights[b]).expect("weights must not be NaN")
        });

        debug_assert!(ranks.is_empty(), "caller clears the output buffer");
        ranks.resize(weights.len(), f64::INFINITY);
        let mut previous_weight = 0.0;
        let mut running_min = f64::INFINITY;
        for (level, &assignment) in order.iter().enumerate() {
            let weight = weights[assignment];
            if weight <= 0.0 {
                // Zero weight: rank stays +∞ and the increment baseline is
                // unchanged.
                continue;
            }
            let increment = weight - previous_weight;
            if increment > 0.0 {
                let u = self.seeds.auxiliary_seed(key, level);
                // d_level ~ EXP[increment]
                let d = -(-u).ln_1p() / increment;
                running_min = running_min.min(d);
            }
            ranks[assignment] = running_min;
            previous_weight = weight;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights_of(key: Key) -> Vec<f64> {
        // A small deterministic, non-uniform weight vector per key.
        vec![
            (key % 7 + 1) as f64,
            (key % 5) as f64, // sometimes zero
            ((key * 3) % 11 + 2) as f64,
        ]
    }

    #[test]
    fn independent_differences_requires_exp() {
        let err = RankGenerator::new(RankFamily::Ipps, CoordinationMode::IndependentDifferences, 1)
            .unwrap_err();
        assert_eq!(err, CwsError::IndependentDifferencesRequiresExp);
        assert!(RankGenerator::new(RankFamily::Exp, CoordinationMode::IndependentDifferences, 1)
            .is_ok());
    }

    #[test]
    fn shared_seed_ranks_are_consistent() {
        // Consistency: w^(b1)(i) >= w^(b2)(i) => r^(b1)(i) <= r^(b2)(i).
        for family in [RankFamily::Exp, RankFamily::Ipps] {
            let gen = RankGenerator::new(family, CoordinationMode::SharedSeed, 3).unwrap();
            for key in 0..500u64 {
                let w = weights_of(key);
                let r = gen.rank_vector(key, &w);
                for a in 0..w.len() {
                    for b in 0..w.len() {
                        if w[a] >= w[b] && w[b] > 0.0 {
                            assert!(
                                r[a] <= r[b] + 1e-15,
                                "key {key}: w={w:?} r={r:?} violates consistency"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn independent_differences_ranks_are_consistent() {
        let gen = RankGenerator::new(RankFamily::Exp, CoordinationMode::IndependentDifferences, 3)
            .unwrap();
        for key in 0..500u64 {
            let w = weights_of(key);
            let r = gen.rank_vector(key, &w);
            for a in 0..w.len() {
                for b in 0..w.len() {
                    if w[a] >= w[b] && w[b] > 0.0 {
                        assert!(r[a] <= r[b] + 1e-15, "key {key}: w={w:?} r={r:?}");
                    }
                    if w[a] == w[b] {
                        assert_eq!(r[a].to_bits(), r[b].to_bits(), "equal weights equal ranks");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_weight_has_infinite_rank_in_all_modes() {
        for mode in [
            CoordinationMode::Independent,
            CoordinationMode::SharedSeed,
            CoordinationMode::IndependentDifferences,
        ] {
            let gen = RankGenerator::new(RankFamily::Exp, mode, 9).unwrap();
            let r = gen.rank_vector(11, &[0.0, 5.0, 0.0]);
            assert!(r[0].is_infinite());
            assert!(r[1].is_finite());
            assert!(r[2].is_infinite());
        }
    }

    #[test]
    fn dispersed_rank_matches_rank_vector_for_dispersable_modes() {
        for mode in [CoordinationMode::Independent, CoordinationMode::SharedSeed] {
            for family in [RankFamily::Exp, RankFamily::Ipps] {
                let gen = RankGenerator::new(family, mode, 17).unwrap();
                for key in 0..200u64 {
                    let w = weights_of(key);
                    let vector = gen.rank_vector(key, &w);
                    for (b, &wb) in w.iter().enumerate() {
                        let single = gen.dispersed_rank(key, wb, b).unwrap();
                        assert_eq!(single.to_bits(), vector[b].to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn rank_vector_into_is_bit_identical_and_reuses_buffer() {
        let mut buffer = Vec::new();
        for (family, mode) in [
            (RankFamily::Ipps, CoordinationMode::SharedSeed),
            (RankFamily::Exp, CoordinationMode::SharedSeed),
            (RankFamily::Ipps, CoordinationMode::Independent),
            (RankFamily::Exp, CoordinationMode::IndependentDifferences),
        ] {
            let gen = RankGenerator::new(family, mode, 29).unwrap();
            for key in 0..300u64 {
                let w = weights_of(key);
                let fresh = gen.rank_vector(key, &w);
                gen.rank_vector_into(key, &w, &mut buffer);
                assert_eq!(fresh.len(), buffer.len());
                for (a, b) in fresh.iter().zip(&buffer) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{family:?} {mode:?} key {key}");
                }
            }
        }
    }

    #[test]
    fn dispersed_rank_rejected_for_independent_differences() {
        let gen = RankGenerator::new(RankFamily::Exp, CoordinationMode::IndependentDifferences, 5)
            .unwrap();
        assert!(gen.dispersed_rank(1, 2.0, 0).is_err());
    }

    #[test]
    fn marginal_distribution_is_exponential_for_independent_differences() {
        // r^(b)(i) should be EXP[w^(b)(i)] regardless of the other entries:
        // check the empirical mean of ranks across many keys with the same
        // weight vector.
        let gen = RankGenerator::new(RankFamily::Exp, CoordinationMode::IndependentDifferences, 7)
            .unwrap();
        let weights = [4.0, 1.0, 2.5];
        let n = 30_000u64;
        let mut sums = [0.0f64; 3];
        for key in 0..n {
            let r = gen.rank_vector(key, &weights);
            for b in 0..3 {
                sums[b] += r[b];
            }
        }
        for b in 0..3 {
            let mean = sums[b] / n as f64;
            let expected = 1.0 / weights[b];
            assert!(
                (mean - expected).abs() < expected * 0.05,
                "assignment {b}: mean {mean} expected {expected}"
            );
        }
    }

    #[test]
    fn independent_mode_ranks_are_uncorrelated_across_assignments() {
        let gen = RankGenerator::new(RankFamily::Ipps, CoordinationMode::Independent, 23).unwrap();
        // With equal weights, consistent ranks would be identical; independent
        // ranks should essentially never be.
        let equal = (0..2000u64)
            .filter(|&key| {
                let r = gen.rank_vector(key, &[3.0, 3.0]);
                r[0] == r[1]
            })
            .count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn shared_seed_equal_weights_equal_ranks() {
        let gen = RankGenerator::new(RankFamily::Ipps, CoordinationMode::SharedSeed, 23).unwrap();
        for key in 0..100u64 {
            let r = gen.rank_vector(key, &[3.0, 3.0]);
            assert_eq!(r[0], r[1]);
        }
    }

    #[test]
    fn derive_changes_ranks() {
        let gen = RankGenerator::new(RankFamily::Ipps, CoordinationMode::SharedSeed, 23).unwrap();
        let other = gen.derive(1);
        assert_ne!(gen.rank_vector(5, &[1.0, 2.0]), other.rank_vector(5, &[1.0, 2.0]));
        assert_eq!(gen.family(), other.family());
        assert_eq!(gen.mode(), other.mode());
    }

    #[test]
    fn mode_helpers() {
        assert!(!CoordinationMode::Independent.is_coordinated());
        assert!(CoordinationMode::SharedSeed.is_coordinated());
        assert!(CoordinationMode::IndependentDifferences.is_coordinated());
        assert_eq!(CoordinationMode::SharedSeed.name(), "shared-seed");
    }
}
