//! Coordinated weighted sampling for estimating aggregates over multiple
//! weight assignments.
//!
//! This crate implements the primary contribution of Cohen, Kaplan and Sen,
//! *"Coordinated Weighted Sampling for Estimating Aggregates Over Multiple
//! Weight Assignments"* (VLDB 2009): sample-based summaries of data sets in
//! which each key carries a **vector** of weights (one entry per *weight
//! assignment*), together with unbiased estimators for single-assignment and
//! multiple-assignment aggregates (weighted sums, `max`, `min`, the `L1`
//! difference, ℓ-th largest weights and weighted Jaccard similarity), over
//! subpopulations selected *after* the summary was built.
//!
//! # Concepts
//!
//! * [`MultiWeighted`] — a set of keys, each with a weight vector over the
//!   assignments `W` (the data being summarized).
//! * [`RankFamily`] — the monotone family of rank distributions (EXP or IPPS)
//!   that turns a uniform seed into a rank value.
//! * [`CoordinationMode`] — how rank vectors relate across assignments:
//!   independent, shared-seed consistent, or independent-differences
//!   consistent.
//! * [`sketch`] — Poisson-τ, bottom-k and k-mins sketches of a single
//!   weighted set.
//! * [`summary`] — multi-assignment summaries for the *dispersed* and the
//!   *colocated* models: one embedded bottom-k sketch per assignment.
//! * [`estimate`] — the template estimator and its concrete instantiations:
//!   plain per-sketch RC estimators, colocated *inclusive* estimators and
//!   dispersed *s-set* / *l-set* estimators, all returning
//!   [`AdjustedWeights`] (Horvitz–Thompson style adjusted-weight summaries).
//! * [`aggregates`] — exact evaluation of the aggregates, used as ground
//!   truth by tests and by the evaluation harness.
//!
//! # Quick example
//!
//! ```
//! use cws_core::prelude::*;
//!
//! // Three weight assignments over five keys (colocated model).
//! let mut builder = MultiWeighted::builder(3);
//! for key in 0u64..5 {
//!     for b in 0..3 {
//!         builder.add(key, b, (key + 1) as f64 * (b + 1) as f64);
//!     }
//! }
//! let data = builder.build();
//!
//! // Coordinated (shared-seed, IPPS) bottom-3 summary.
//! let config = SummaryConfig::new(3, RankFamily::Ipps, CoordinationMode::SharedSeed, 42);
//! let summary = ColocatedSummary::build(&data, &config);
//!
//! // Unbiased estimate of the L1 difference between assignments 0 and 2
//! // over the odd keys, selected after the summary was built.
//! let estimator = InclusiveEstimator::new(&summary);
//! let aw = estimator.l1(&[0, 2]).unwrap();
//! let estimate = aw.subset_total(|key| key % 2 == 1);
//! assert!(estimate >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
pub mod budget;
pub mod codec;
pub mod columns;
pub mod coordination;
pub mod durable;
pub mod error;
pub mod estimate;
pub mod fault;
pub mod ranks;
pub mod sketch;
pub mod summary;
pub mod variance;
pub mod weights;

#[cfg(test)]
mod paper_examples;

pub use aggregates::{exact_aggregate, AggregateFn};
pub use budget::{
    AdmissionControl, BudgetGuard, Deadline, QuarantinedRecords, ResourceBudget, RetryPolicy,
};
pub use codec::DecodedSummary;
pub use columns::RecordColumns;
pub use coordination::{CoordinationMode, RankGenerator};
pub use error::{CodecErrorKind, CwsError, Result};
pub use estimate::adjusted::AdjustedWeights;
pub use estimate::colocated::{InclusiveEstimator, PlainEstimator};
pub use estimate::dispersed::{DispersedEstimator, SelectionKind};
pub use fault::{FaultPlan, WorkerFault};
pub use ranks::RankFamily;
pub use summary::{ColocatedSummary, DispersedSummary, SummaryConfig};
pub use variance::{normal_ci, ConfidenceInterval, Z_95};
pub use weights::{Key, MultiWeighted, MultiWeightedBuilder, WeightedSet};

/// Commonly used items.
pub mod prelude {
    pub use crate::aggregates::{exact_aggregate, AggregateFn};
    pub use crate::budget::{
        AdmissionControl, BudgetGuard, Deadline, QuarantinedRecords, ResourceBudget, RetryPolicy,
    };
    pub use crate::codec::DecodedSummary;
    pub use crate::columns::RecordColumns;
    pub use crate::coordination::{CoordinationMode, RankGenerator};
    pub use crate::error::{CodecErrorKind, CwsError, Result};
    pub use crate::estimate::adjusted::AdjustedWeights;
    pub use crate::estimate::colocated::{InclusiveEstimator, PlainEstimator};
    pub use crate::estimate::dispersed::{DispersedEstimator, SelectionKind};
    pub use crate::fault::{FaultPlan, WorkerFault};
    pub use crate::ranks::RankFamily;
    pub use crate::sketch::bottomk::BottomKSketch;
    pub use crate::sketch::kmins::KMinsSketch;
    pub use crate::sketch::poisson::PoissonSketch;
    pub use crate::summary::{ColocatedSummary, DispersedSummary, SummaryConfig};
    pub use crate::variance::{normal_ci, ConfidenceInterval, Z_95};
    pub use crate::weights::{Key, MultiWeighted, MultiWeightedBuilder, WeightedSet};
}
