//! Resource governance: byte/key budgets, wall-clock deadlines, and a
//! deterministic retry policy.
//!
//! A long-lived sampling service dies two ways the fault framework in
//! [`fault`](crate::fault) does not cover: it is *fed too much* (an
//! aggregation table or channel backlog grows without bound until the
//! process is OOM-killed) or it is *asked too much* (a slow multi-query
//! pass holds a caller hostage). This module provides the governance
//! vocabulary the engine threads through its hot paths:
//!
//! * [`ResourceBudget`] — a declarative cap on tracked bytes, distinct
//!   keys, and wall-clock time. Budgets are configuration; arming one
//!   produces a [`BudgetGuard`].
//! * [`BudgetGuard`] — the armed form, threaded as `&BudgetGuard` through
//!   ingest paths. Usage accounting uses interior mutability (`Cell`) so
//!   one guard can be consulted from several call sites without threading
//!   `&mut` everywhere; guards are cheap and single-threaded by design.
//!   Byte/key checks are exact and deterministic; only the deadline
//!   consults the wall clock.
//! * [`Deadline`] — a single armed wall-clock deadline, checked at chunk
//!   boundaries so a timed-out operation returns a typed
//!   [`CwsError::DeadlineExceeded`] with nothing half-applied.
//! * [`RetryPolicy`] — seeded decorrelated-jitter backoff on the same
//!   SplitMix64 stream as [`FaultPlan`], so a
//!   retry schedule replays bit-exactly from its seed and fault-injection
//!   tests can assert on the exact sequence of waits.
//! * [`QuarantinedRecords`] — the typed report for record-granular
//!   poison-record quarantine (dead-letter rings divert invalid records
//!   while the rest of a batch ingests).
//!
//! Everything here is allocation-free on the hot path and costs nothing
//! unless constructed; an unlimited guard reduces every check to one or
//! two predictable branches.

use std::cell::Cell;
use std::time::{Duration, Instant};

use crate::error::{CwsError, Result};
use crate::fault::FaultPlan;

/// A declarative resource cap: tracked bytes, distinct keys, wall-clock
/// time. All three limits are optional; the default budget is unlimited.
///
/// A budget is plain configuration — cheap to clone, compare and store in
/// builders. Arming it with [`ResourceBudget::guard`] starts the deadline
/// clock and produces the [`BudgetGuard`] the hot paths consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceBudget {
    max_bytes: Option<u64>,
    max_keys: Option<u64>,
    deadline: Option<Duration>,
}

impl ResourceBudget {
    /// A budget with no limits — every check passes.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps the tracked bytes (dense key/lane storage plus index).
    #[must_use]
    pub fn with_max_bytes(mut self, bytes: u64) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// Caps the number of distinct keys held by governed stages.
    #[must_use]
    pub fn with_max_keys(mut self, keys: u64) -> Self {
        self.max_keys = Some(keys);
        self
    }

    /// Sets a wall-clock budget, armed when the guard is created.
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// The byte cap, if any.
    #[must_use]
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The key cap, if any.
    #[must_use]
    pub fn max_keys(&self) -> Option<u64> {
        self.max_keys
    }

    /// The wall-clock budget, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// `true` when no limit is set (the guard will never reject).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_bytes.is_none() && self.max_keys.is_none() && self.deadline.is_none()
    }

    /// Arms the budget: usage counters at zero, deadline clock started.
    #[must_use]
    pub fn guard(&self) -> BudgetGuard {
        BudgetGuard {
            max_bytes: self.max_bytes,
            max_keys: self.max_keys,
            deadline: self.deadline.map(Deadline::after),
            used_bytes: Cell::new(0),
            peak_bytes: Cell::new(0),
            used_keys: Cell::new(0),
        }
    }
}

/// An armed [`ResourceBudget`]: the object threaded as `&BudgetGuard`
/// through ingest hot paths.
///
/// Accounting is *charge-to* style: a governed stage recomputes its exact
/// tracked usage at a batch boundary and calls
/// [`try_charge_bytes_to`](BudgetGuard::try_charge_bytes_to) /
/// [`try_charge_keys_to`](BudgetGuard::try_charge_keys_to) with the total
/// it is about to hold. Charging to a *smaller* total releases (after a
/// flush); the high-water mark survives in
/// [`peak_bytes`](BudgetGuard::peak_bytes) so operators and benchmarks see
/// real memory pressure, not just the post-flush level.
#[derive(Debug, Clone)]
pub struct BudgetGuard {
    max_bytes: Option<u64>,
    max_keys: Option<u64>,
    deadline: Option<Deadline>,
    used_bytes: Cell<u64>,
    peak_bytes: Cell<u64>,
    used_keys: Cell<u64>,
}

impl BudgetGuard {
    /// A guard that never rejects (the identity element for threading).
    #[must_use]
    pub fn unlimited() -> Self {
        ResourceBudget::unlimited().guard()
    }

    /// Charges the byte counter to an absolute `total`, rejecting with
    /// [`CwsError::BudgetExceeded`] — and leaving the counter unchanged —
    /// when `total` exceeds the cap. Charging below the current level
    /// releases bytes; the peak is retained.
    ///
    /// # Errors
    /// [`CwsError::BudgetExceeded`] with `resource: "bytes"` when `total`
    /// exceeds the configured cap.
    #[inline]
    pub fn try_charge_bytes_to(&self, total: u64) -> Result<()> {
        if let Some(limit) = self.max_bytes {
            if total > limit {
                let used = self.used_bytes.get();
                return Err(CwsError::BudgetExceeded {
                    resource: "bytes",
                    used,
                    requested: total.saturating_sub(used),
                    limit,
                });
            }
        }
        self.used_bytes.set(total);
        if total > self.peak_bytes.get() {
            self.peak_bytes.set(total);
        }
        Ok(())
    }

    /// Charges the distinct-key counter to an absolute `total`, rejecting
    /// with [`CwsError::BudgetExceeded`] when `total` exceeds the cap.
    ///
    /// # Errors
    /// [`CwsError::BudgetExceeded`] with `resource: "keys"` when `total`
    /// exceeds the configured cap.
    #[inline]
    pub fn try_charge_keys_to(&self, total: u64) -> Result<()> {
        if let Some(limit) = self.max_keys {
            if total > limit {
                let used = self.used_keys.get();
                return Err(CwsError::BudgetExceeded {
                    resource: "keys",
                    used,
                    requested: total.saturating_sub(used),
                    limit,
                });
            }
        }
        self.used_keys.set(total);
        Ok(())
    }

    /// Checks the armed deadline (a no-op when none is set).
    ///
    /// # Errors
    /// [`CwsError::DeadlineExceeded`] naming `op` once the wall clock has
    /// passed the armed deadline.
    #[inline]
    pub fn check_deadline(&self, op: &'static str) -> Result<()> {
        match &self.deadline {
            Some(deadline) => deadline.check(op),
            None => Ok(()),
        }
    }

    /// The key cap, if any (governed stages may pre-size from it).
    #[must_use]
    pub fn max_keys(&self) -> Option<u64> {
        self.max_keys
    }

    /// The byte cap, if any.
    #[must_use]
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Bytes currently charged.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes.get()
    }

    /// The high-water mark of charged bytes over the guard's lifetime.
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.get()
    }

    /// Distinct keys currently charged.
    #[must_use]
    pub fn used_keys(&self) -> u64 {
        self.used_keys.get()
    }
}

/// One armed wall-clock deadline, checked at chunk boundaries.
///
/// Copyable and allocation-free; `check` is one `Instant::now()` call, so
/// checking every few thousand records costs nothing measurable while
/// bounding how far past its budget an operation can run.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    expires: Instant,
    budget_ms: u64,
}

impl Deadline {
    /// Arms a deadline `budget` from now.
    #[must_use]
    pub fn after(budget: Duration) -> Self {
        Self {
            expires: Instant::now() + budget,
            budget_ms: budget.as_millis().min(u128::from(u64::MAX)) as u64,
        }
    }

    /// `true` once the wall clock has passed the deadline.
    #[must_use]
    pub fn expired(&self) -> bool {
        Instant::now() >= self.expires
    }

    /// Typed check: the chunk-boundary form of [`Deadline::expired`].
    ///
    /// # Errors
    /// [`CwsError::DeadlineExceeded`] naming `op` once expired.
    #[inline]
    pub fn check(&self, op: &'static str) -> Result<()> {
        if self.expired() {
            Err(CwsError::DeadlineExceeded { op, budget_ms: self.budget_ms })
        } else {
            Ok(())
        }
    }
}

/// Deterministic decorrelated-jitter backoff, seeded on the same
/// SplitMix64 stream as [`FaultPlan`].
///
/// The schedule follows the decorrelated-jitter rule
/// `wait = min(cap, uniform(base, 3 × previous_wait))` — good spread under
/// contention — but every draw comes from the seeded plan stream, so the
/// exact sequence of waits replays from `(seed, base, cap)` alone. That is
/// what makes retried overload runs testable: a same-seed re-run after an
/// [`Overloaded`](CwsError::Overloaded) rejection backs off identically
/// and re-ingests bit-exactly.
///
/// Retries make sense only for *transient* rejections; the policy treats
/// [`CwsError::Overloaded`] and [`CwsError::ShardStalled`] as retryable
/// and everything else (budget breaches need a flush, deadline breaches a
/// fresh deadline) as final.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    plan: FaultPlan,
    base_ms: u64,
    cap_ms: u64,
    max_attempts: u32,
    previous_ms: u64,
    attempts: u32,
}

impl RetryPolicy {
    /// Default backoff floor: 1 ms.
    pub const DEFAULT_BASE_MS: u64 = 1;
    /// Default backoff ceiling: 1 s.
    pub const DEFAULT_CAP_MS: u64 = 1_000;
    /// Default attempt budget (initial try + 7 retries).
    pub const DEFAULT_MAX_ATTEMPTS: u32 = 8;

    /// A policy with the default base (1 ms), cap (1 s) and attempt budget
    /// (8), drawing jitter from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            plan: FaultPlan::new(seed),
            base_ms: Self::DEFAULT_BASE_MS,
            cap_ms: Self::DEFAULT_CAP_MS,
            max_attempts: Self::DEFAULT_MAX_ATTEMPTS,
            previous_ms: Self::DEFAULT_BASE_MS,
            attempts: 0,
        }
    }

    /// Overrides the backoff floor and ceiling (milliseconds). The floor
    /// is clamped to at least 1 ms and the ceiling to at least the floor.
    #[must_use]
    pub fn with_backoff_ms(mut self, base_ms: u64, cap_ms: u64) -> Self {
        self.base_ms = base_ms.max(1);
        self.cap_ms = cap_ms.max(self.base_ms);
        self.previous_ms = self.base_ms;
        self
    }

    /// Overrides the attempt budget (clamped to at least 1: the initial
    /// try always runs).
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Number of backoffs already drawn.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// `true` for errors a backoff can plausibly clear (transient
    /// admission/stall rejections); budget and deadline breaches are
    /// final — they need a flush or a fresh deadline, not a wait.
    #[must_use]
    pub fn is_retryable(error: &CwsError) -> bool {
        matches!(error, CwsError::Overloaded { .. } | CwsError::ShardStalled { .. })
    }

    /// Draws the next backoff, or `None` once the attempt budget is spent.
    /// Pure accounting — the caller decides whether (and how) to sleep, so
    /// tests can assert on the exact schedule without waiting it out.
    pub fn next_backoff(&mut self) -> Option<Duration> {
        if self.attempts + 1 >= self.max_attempts {
            return None;
        }
        self.attempts += 1;
        let spread = self.previous_ms.saturating_mul(3).max(self.base_ms + 1) - self.base_ms;
        let wait = (self.base_ms + self.plan.next_below(spread)).min(self.cap_ms);
        self.previous_ms = wait;
        Some(Duration::from_millis(wait))
    }

    /// Runs `op`, sleeping through the seeded backoff schedule after each
    /// retryable error, until it succeeds, fails with a non-retryable
    /// error, or the attempt budget is spent (the last error is returned).
    ///
    /// # Errors
    /// The first non-retryable error `op` returns, or its last retryable
    /// error once attempts are exhausted.
    pub fn run<T, F: FnMut() -> Result<T>>(&mut self, mut op: F) -> Result<T> {
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(error) if Self::is_retryable(&error) => match self.next_backoff() {
                    Some(wait) => std::thread::sleep(wait),
                    None => return Err(error),
                },
                Err(error) => return Err(error),
            }
        }
    }
}

/// How an admission-controlled stage (a sharded lane's bounded in-flight
/// batch window) behaves when it is at capacity.
///
/// The two modes compose with the stall timeout rather than replacing it:
/// `Block` is the classic behaviour — wait up to the (generous) stall
/// timeout, then report [`CwsError::ShardStalled`] (the worker is
/// genuinely wedged). `FailFast` bounds the *admission* wait much lower:
/// a full in-flight window returns [`CwsError::Overloaded`] after `wait`,
/// which a [`RetryPolicy`] can back off and retry, while a dead worker
/// still surfaces as its own typed error immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionControl {
    /// Wait up to the stall timeout for an admission slot (the classic
    /// backpressure behaviour); an expiry means a wedged shard
    /// ([`CwsError::ShardStalled`]).
    #[default]
    Block,
    /// Wait at most `wait` for an admission slot, then shed the push with
    /// [`CwsError::Overloaded`] — the records stay buffered on the caller
    /// side, so the same push can be retried after a backoff.
    FailFast {
        /// Upper bound on the admission wait (clamped to the stall
        /// timeout; `Duration::ZERO` never sleeps).
        wait: Duration,
    },
}

/// The typed report of a record-granular quarantine pass: how many
/// records a dead-letter ring diverted, and the error that condemned the
/// first of them (the most useful single diagnostic — poison records in
/// one batch usually share a cause).
///
/// The contract this reports on: `quarantined count + ingested count ==
/// offered count`. Valid records are never lost to a poison neighbour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRecords {
    /// Number of records diverted since the ring was last drained.
    pub count: u64,
    /// The typed error that condemned the first diverted record.
    pub first_error: CwsError,
}

impl std::fmt::Display for QuarantinedRecords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} record(s) quarantined; first cause: {}", self.count, self.first_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_rejects() {
        let guard = BudgetGuard::unlimited();
        guard.try_charge_bytes_to(u64::MAX).unwrap();
        guard.try_charge_keys_to(u64::MAX).unwrap();
        guard.check_deadline("test").unwrap();
        assert_eq!(guard.peak_bytes(), u64::MAX);
    }

    #[test]
    fn byte_cap_rejects_without_mutating_and_peak_survives_release() {
        let guard = ResourceBudget::unlimited().with_max_bytes(100).guard();
        guard.try_charge_bytes_to(96).unwrap();
        let err = guard.try_charge_bytes_to(128).unwrap_err();
        match err {
            CwsError::BudgetExceeded { resource: "bytes", used: 96, requested: 32, limit: 100 } => {
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(guard.used_bytes(), 96, "a rejected charge must not apply");
        // Charging below the current level releases; the peak survives.
        guard.try_charge_bytes_to(10).unwrap();
        assert_eq!(guard.used_bytes(), 10);
        assert_eq!(guard.peak_bytes(), 96);
    }

    #[test]
    fn key_cap_rejects_at_the_boundary() {
        let guard = ResourceBudget::unlimited().with_max_keys(3).guard();
        guard.try_charge_keys_to(3).unwrap();
        let err = guard.try_charge_keys_to(4).unwrap_err();
        assert!(matches!(err, CwsError::BudgetExceeded { resource: "keys", limit: 3, .. }));
        assert_eq!(guard.used_keys(), 3);
    }

    #[test]
    fn expired_deadline_is_a_typed_error() {
        let deadline = Deadline::after(Duration::ZERO);
        let err = deadline.check("query").unwrap_err();
        assert!(matches!(err, CwsError::DeadlineExceeded { op: "query", .. }));
        let generous = Deadline::after(Duration::from_secs(3600));
        generous.check("query").unwrap();

        let guard = ResourceBudget::unlimited().with_deadline(Duration::ZERO).guard();
        assert!(guard.check_deadline("ingest").is_err());
    }

    #[test]
    fn retry_schedule_is_deterministic_and_bounded() {
        let schedule = |seed: u64| {
            let mut policy = RetryPolicy::new(seed).with_backoff_ms(2, 50);
            let mut waits = Vec::new();
            while let Some(wait) = policy.next_backoff() {
                waits.push(wait.as_millis() as u64);
            }
            waits
        };
        let a = schedule(42);
        let b = schedule(42);
        assert_eq!(a, b, "same seed must replay the same backoff sequence");
        assert_eq!(a.len() as u32, RetryPolicy::DEFAULT_MAX_ATTEMPTS - 1);
        assert!(a.iter().all(|&ms| (2..=50).contains(&ms)), "{a:?}");
        let c = schedule(43);
        assert_ne!(a, c, "different seeds must decorrelate");
    }

    #[test]
    fn run_retries_transient_errors_and_respects_the_attempt_budget() {
        let mut policy = RetryPolicy::new(7).with_backoff_ms(1, 1).with_max_attempts(4);
        let mut calls = 0;
        let result: Result<u32> = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(CwsError::Overloaded { stage: "shard", in_flight: 4, capacity: 4 })
            } else {
                Ok(99)
            }
        });
        assert_eq!(result.unwrap(), 99);
        assert_eq!(calls, 3);

        let mut policy = RetryPolicy::new(7).with_backoff_ms(1, 1).with_max_attempts(3);
        let mut calls = 0;
        let result: Result<()> = policy.run(|| {
            calls += 1;
            Err(CwsError::Overloaded { stage: "shard", in_flight: 4, capacity: 4 })
        });
        assert!(matches!(result, Err(CwsError::Overloaded { .. })));
        assert_eq!(calls, 3, "max_attempts bounds the total number of tries");
    }

    #[test]
    fn run_does_not_retry_final_errors() {
        let mut policy = RetryPolicy::new(1);
        let mut calls = 0;
        let result: Result<()> = policy.run(|| {
            calls += 1;
            Err(CwsError::BudgetExceeded { resource: "keys", used: 1, requested: 1, limit: 1 })
        });
        assert!(matches!(result, Err(CwsError::BudgetExceeded { .. })));
        assert_eq!(calls, 1, "budget breaches need a flush, not a retry");
        assert!(!RetryPolicy::is_retryable(&CwsError::DeadlineExceeded {
            op: "query",
            budget_ms: 1
        }));
        assert!(RetryPolicy::is_retryable(&CwsError::ShardStalled { shard: 0, timeout_ms: 1 }));
    }

    #[test]
    fn quarantine_report_displays_count_and_cause() {
        let report = QuarantinedRecords {
            count: 3,
            first_error: CwsError::InvalidParameter {
                name: "weight",
                message: "must be finite".into(),
            },
        };
        let text = report.to_string();
        assert!(text.contains('3'), "{text}");
        assert!(text.contains("finite"), "{text}");
    }
}
