//! Structure-of-arrays record batches for the ingestion hot path.
//!
//! The stream samplers of `cws-stream` consume `(key, weight-vector)`
//! records. Row-major handoff (one `&[f64]` per record) forces the
//! per-assignment candidate loops to stride across interleaved weights and
//! makes sharded handoff copy each record individually. [`RecordColumns`]
//! stores a batch the other way round — one contiguous key column plus one
//! contiguous weight *lane* per assignment — so that
//!
//! * the per-assignment threshold pre-filter scans a flat `&[f64]` lane
//!   (auto-vectorizable, one threshold register, no per-record indirection);
//! * sharded dispatch moves whole columns: a batch crosses a thread boundary
//!   as three `Vec` pointers per lane instead of a per-record copy;
//! * buffers are recyclable: [`RecordColumns::clear`] keeps every lane's
//!   allocation, enabling allocate-once buffer pools.
//!
//! The layout flows unchanged from the data generators (`cws-data`) through
//! `MultiAssignmentStreamSampler::push_columns` down to the
//! `ShardedDispersedSampler` handoff.

use crate::error::{CwsError, Result};
use crate::weights::{Key, MultiWeighted};

/// Whether a weight is accepted by the samplers: finite and non-negative.
/// `w >= 0.0` rejects NaN and negatives in one compare; `w < f64::INFINITY`
/// rejects `+∞`.
#[inline]
#[must_use]
pub fn weight_is_valid(weight: f64) -> bool {
    (0.0..f64::INFINITY).contains(&weight)
}

/// Index of the first invalid weight in `lane`, or `None` when the whole
/// lane is finite and non-negative.
///
/// The common (all-valid) case is a single branch-free reduction over the
/// lane; only a lane that actually contains an invalid weight pays the
/// second, position-finding scan.
#[inline]
#[must_use]
pub fn first_invalid_weight(lane: &[f64]) -> Option<usize> {
    let all_valid = lane.iter().fold(true, |ok, &w| ok & (0.0..f64::INFINITY).contains(&w));
    if all_valid {
        None
    } else {
        lane.iter().position(|&w| !weight_is_valid(w))
    }
}

/// The error every push boundary returns for a NaN, infinite or negative
/// weight.
#[must_use]
pub fn invalid_weight_error(key: Key, assignment: usize, weight: f64) -> CwsError {
    CwsError::InvalidParameter {
        name: "weight",
        message: format!(
            "key {key}, assignment {assignment}: weight {weight} must be finite and non-negative"
        ),
    }
}

/// Validates one weight lane against its key column — the single validation
/// kernel every push boundary (single-assignment, multi-assignment, sharded)
/// shares, so the acceptance contract cannot drift between them.
///
/// # Errors
/// Returns [`invalid_weight_error`] for the first offending entry.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn validate_weight_lane(keys: &[Key], lane: &[f64], assignment: usize) -> Result<()> {
    assert_eq!(keys.len(), lane.len(), "key and weight columns must align");
    match first_invalid_weight(lane) {
        None => Ok(()),
        Some(offset) => Err(invalid_weight_error(keys[offset], assignment, lane[offset])),
    }
}

/// A structure-of-arrays batch of `(key, weight-vector)` records: one
/// contiguous key column and one contiguous weight lane per assignment.
///
/// Invariant: every lane has exactly `len()` entries; record `i` is
/// `(keys()[i], lane(0)[i], …, lane(A-1)[i])`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordColumns {
    keys: Vec<Key>,
    lanes: Vec<Vec<f64>>,
}

impl RecordColumns {
    /// Creates an empty batch for `num_assignments` assignments.
    ///
    /// # Panics
    /// Panics if `num_assignments == 0`.
    #[must_use]
    pub fn new(num_assignments: usize) -> Self {
        Self::with_capacity(num_assignments, 0)
    }

    /// Creates an empty batch with room for `records` records per lane.
    ///
    /// # Panics
    /// Panics if `num_assignments == 0`.
    #[must_use]
    pub fn with_capacity(num_assignments: usize, records: usize) -> Self {
        assert!(num_assignments > 0, "at least one weight assignment is required");
        Self {
            keys: Vec::with_capacity(records),
            lanes: (0..num_assignments).map(|_| Vec::with_capacity(records)).collect(),
        }
    }

    /// Number of weight assignments (lanes).
    #[must_use]
    pub fn num_assignments(&self) -> usize {
        self.lanes.len()
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the batch holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key column.
    #[must_use]
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// The weight lane of `assignment`.
    ///
    /// # Panics
    /// Panics if `assignment >= num_assignments()`.
    #[must_use]
    pub fn lane(&self, assignment: usize) -> &[f64] {
        &self.lanes[assignment]
    }

    /// Appends one record given as a row.
    ///
    /// # Panics
    /// Panics if `row.len() != num_assignments()`.
    #[inline]
    pub fn push(&mut self, key: Key, row: &[f64]) {
        assert_eq!(row.len(), self.lanes.len(), "weight vector arity mismatch");
        self.keys.push(key);
        for (lane, &weight) in self.lanes.iter_mut().zip(row) {
            lane.push(weight);
        }
    }

    /// Appends record `index` of `source` (a cross-batch gather, used by
    /// shard routing).
    ///
    /// # Panics
    /// Panics if the assignment counts differ or `index` is out of range.
    #[inline]
    pub fn push_row_from(&mut self, source: &RecordColumns, index: usize) {
        assert_eq!(source.lanes.len(), self.lanes.len(), "assignment arity mismatch");
        self.keys.push(source.keys[index]);
        for (lane, src) in self.lanes.iter_mut().zip(&source.lanes) {
            lane.push(src[index]);
        }
    }

    /// Bulk-appends `len` records of `source` starting at `start` — a
    /// per-lane `memcpy`, the single-shard fast path of the sharded engine.
    ///
    /// # Panics
    /// Panics if the assignment counts differ or the range is out of bounds.
    pub fn extend_from(&mut self, source: &RecordColumns, start: usize, len: usize) {
        assert_eq!(source.lanes.len(), self.lanes.len(), "assignment arity mismatch");
        self.keys.extend_from_slice(&source.keys[start..start + len]);
        for (lane, src) in self.lanes.iter_mut().zip(&source.lanes) {
            lane.extend_from_slice(&src[start..start + len]);
        }
    }

    /// Clears all records while keeping every lane's allocation — the
    /// recycling primitive of the sharded buffer pool.
    pub fn clear(&mut self) {
        self.keys.clear();
        for lane in &mut self.lanes {
            lane.clear();
        }
    }

    /// Copies record `index` into `row` (resized to the assignment count).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn copy_row_into(&self, index: usize, row: &mut Vec<f64>) {
        row.clear();
        row.extend(self.lanes.iter().map(|lane| lane[index]));
    }

    /// Checks every lane for NaN, infinite or negative weights.
    ///
    /// # Errors
    /// Returns [`CwsError::InvalidParameter`] naming the first offending
    /// `(key, assignment, weight)`.
    pub fn validate(&self) -> Result<()> {
        self.validate_span(0, self.len())
    }

    /// As [`RecordColumns::validate`], restricted to `len` records starting
    /// at `start` — what the chunked ingestion kernels call right before
    /// scanning the same span, while it is hot in cache.
    ///
    /// # Errors
    /// As [`RecordColumns::validate`].
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn validate_span(&self, start: usize, len: usize) -> Result<()> {
        let keys = &self.keys[start..start + len];
        for (assignment, lane) in self.lanes.iter().enumerate() {
            validate_weight_lane(keys, &lane[start..start + len], assignment)?;
        }
        Ok(())
    }

    /// Splits the batch into owned chunks of at most `chunk_len` records
    /// (the last chunk may be shorter) — how benchmark and pipeline code
    /// turns one large column set into hand-off-sized batches.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    #[must_use]
    pub fn split(&self, chunk_len: usize) -> Vec<RecordColumns> {
        assert!(chunk_len > 0, "chunk length must be positive");
        let mut chunks = Vec::with_capacity(self.len().div_ceil(chunk_len));
        let mut start = 0;
        while start < self.len() {
            let len = chunk_len.min(self.len() - start);
            let mut chunk = RecordColumns::with_capacity(self.num_assignments(), len);
            chunk.extend_from(self, start, len);
            chunks.push(chunk);
            start += len;
        }
        chunks
    }

    /// Assembles a batch directly from an already-columnar key column and
    /// weight lanes — the zero-copy exit of producers that accumulate in
    /// structure-of-arrays form themselves (e.g. the streaming
    /// pre-aggregation stage of `cws-engine`).
    ///
    /// # Panics
    /// Panics if `lanes` is empty or any lane's length differs from the key
    /// column's.
    #[must_use]
    pub fn from_parts(keys: Vec<Key>, lanes: Vec<Vec<f64>>) -> Self {
        assert!(!lanes.is_empty(), "at least one weight assignment is required");
        for lane in &lanes {
            assert_eq!(lane.len(), keys.len(), "key and weight columns must align");
        }
        Self { keys, lanes }
    }

    /// Converts a row-major [`MultiWeighted`] data set into columns
    /// (insertion order preserved).
    #[must_use]
    pub fn from_multi(data: &MultiWeighted) -> Self {
        let mut columns = Self::with_capacity(data.num_assignments(), data.num_keys());
        for (key, row) in data.iter() {
            columns.push(key, row);
        }
        columns
    }
}

impl MultiWeighted {
    /// The data set as a structure-of-arrays batch; see [`RecordColumns`].
    #[must_use]
    pub fn to_columns(&self) -> RecordColumns {
        RecordColumns::from_multi(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecordColumns {
        let mut columns = RecordColumns::new(2);
        columns.push(10, &[1.0, 2.0]);
        columns.push(11, &[3.0, 0.0]);
        columns.push(12, &[5.0, 6.0]);
        columns
    }

    #[test]
    fn push_and_lanes_round_trip() {
        let columns = sample();
        assert_eq!(columns.len(), 3);
        assert!(!columns.is_empty());
        assert_eq!(columns.num_assignments(), 2);
        assert_eq!(columns.keys(), &[10, 11, 12]);
        assert_eq!(columns.lane(0), &[1.0, 3.0, 5.0]);
        assert_eq!(columns.lane(1), &[2.0, 0.0, 6.0]);
        let mut row = Vec::new();
        columns.copy_row_into(1, &mut row);
        assert_eq!(row, vec![3.0, 0.0]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut columns = RecordColumns::with_capacity(3, 64);
        columns.push(1, &[1.0, 2.0, 3.0]);
        columns.clear();
        assert!(columns.is_empty());
        assert!(columns.keys.capacity() >= 64);
        assert!(columns.lanes.iter().all(|lane| lane.capacity() >= 64));
    }

    #[test]
    fn extend_and_gather_match_push() {
        let source = sample();
        let mut bulk = RecordColumns::new(2);
        bulk.extend_from(&source, 1, 2);
        let mut gathered = RecordColumns::new(2);
        gathered.push_row_from(&source, 1);
        gathered.push_row_from(&source, 2);
        assert_eq!(bulk, gathered);
        assert_eq!(bulk.keys(), &[11, 12]);
    }

    #[test]
    fn split_partitions_without_loss() {
        let source = sample();
        let chunks = source.split(2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[1].len(), 1);
        let mut rebuilt = RecordColumns::new(2);
        for chunk in &chunks {
            rebuilt.extend_from(chunk, 0, chunk.len());
        }
        assert_eq!(rebuilt, source);
    }

    #[test]
    fn from_parts_round_trips() {
        let built = RecordColumns::from_parts(
            vec![10, 11, 12],
            vec![vec![1.0, 3.0, 5.0], vec![2.0, 0.0, 6.0]],
        );
        assert_eq!(built, sample());
    }

    #[test]
    #[should_panic(expected = "columns must align")]
    fn from_parts_rejects_ragged_lanes() {
        let _ = RecordColumns::from_parts(vec![1, 2], vec![vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn from_multi_preserves_order_and_values() {
        let mut builder = MultiWeighted::builder(2);
        for key in 0..50u64 {
            builder.add(key, 0, (key % 7) as f64);
            builder.add(key, 1, (key % 3) as f64);
        }
        let data = builder.build();
        let columns = data.to_columns();
        assert_eq!(columns.len(), data.num_keys());
        for (index, (key, row)) in data.iter().enumerate() {
            assert_eq!(columns.keys()[index], key);
            assert_eq!(columns.lane(0)[index], row[0]);
            assert_eq!(columns.lane(1)[index], row[1]);
        }
    }

    #[test]
    fn validation_rejects_nan_inf_and_negative() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let mut columns = RecordColumns::new(2);
            columns.push(7, &[1.0, 2.0]);
            columns.push(8, &[bad, 2.0]);
            let err = columns.validate().unwrap_err();
            let text = err.to_string();
            assert!(text.contains("key 8"), "{text}");
            assert!(text.contains("assignment 0"), "{text}");
        }
        assert!(sample().validate().is_ok(), "zero weights are valid");
    }

    #[test]
    fn invalid_weight_scan_finds_first_offender() {
        assert_eq!(first_invalid_weight(&[0.0, 1.0, 2.0]), None);
        assert_eq!(first_invalid_weight(&[0.0, f64::NAN, -1.0]), Some(1));
        assert_eq!(first_invalid_weight(&[-0.5]), Some(0));
        assert_eq!(first_invalid_weight(&[f64::INFINITY]), Some(0));
        assert!(weight_is_valid(0.0));
        assert!(weight_is_valid(1e300));
        assert!(!weight_is_valid(f64::NEG_INFINITY));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_is_rejected() {
        let mut columns = RecordColumns::new(3);
        columns.push(1, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight assignment")]
    fn zero_assignments_rejected() {
        let _ = RecordColumns::new(0);
    }
}
