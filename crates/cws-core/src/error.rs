//! Error type for the coordinated weighted sampling library.

use std::fmt;

/// Result alias using [`CwsError`].
pub type Result<T> = std::result::Result<T, CwsError>;

/// Errors produced by the sampling and estimation routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CwsError {
    /// The requested estimator does not exist for this configuration.
    ///
    /// The canonical example from the paper: there is no nonnegative unbiased
    /// estimator for `max` or `L1` over *independent* sketches when seeds are
    /// unknown (Section 9.2, footnote 3).
    UnsupportedEstimator {
        /// The estimator that was requested.
        estimator: &'static str,
        /// Why the configuration cannot support it.
        reason: &'static str,
    },
    /// An assignment index was out of range for the data set or summary.
    AssignmentOutOfRange {
        /// The offending index.
        index: usize,
        /// The number of assignments available.
        available: usize,
    },
    /// A set of relevant assignments `R` was empty.
    EmptyAssignmentSet,
    /// A parameter had an invalid value (negative weight, zero sample size…).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The independent-differences construction requires EXP ranks.
    IndependentDifferencesRequiresExp,
    /// ℓ (top-ℓ dependence order) was outside `1..=|R|`.
    InvalidDependenceOrder {
        /// The requested ℓ.
        ell: usize,
        /// The size of the relevant assignment set.
        relevant: usize,
    },
    /// A sharded-ingestion worker thread panicked; the partial summaries are
    /// unusable and the whole pass must be re-run.
    ShardWorkerPanicked {
        /// Index of the shard whose worker died.
        shard: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for CwsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CwsError::UnsupportedEstimator { estimator, reason } => {
                write!(f, "estimator `{estimator}` is not supported: {reason}")
            }
            CwsError::AssignmentOutOfRange { index, available } => {
                write!(f, "assignment index {index} out of range (only {available} assignments)")
            }
            CwsError::EmptyAssignmentSet => {
                write!(f, "the set of relevant assignments must not be empty")
            }
            CwsError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            CwsError::IndependentDifferencesRequiresExp => {
                write!(f, "independent-differences consistent ranks are only defined for EXP ranks")
            }
            CwsError::InvalidDependenceOrder { ell, relevant } => {
                write!(f, "dependence order ell={ell} must lie in 1..={relevant}")
            }
            CwsError::ShardWorkerPanicked { shard, message } => {
                write!(f, "shard {shard} worker thread panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CwsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CwsError::AssignmentOutOfRange { index: 5, available: 3 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));

        let e = CwsError::UnsupportedEstimator { estimator: "max", reason: "independent sketches" };
        assert!(e.to_string().contains("max"));

        let e = CwsError::InvalidParameter { name: "k", message: "must be positive".into() };
        assert!(e.to_string().contains('k'));

        let e = CwsError::InvalidDependenceOrder { ell: 4, relevant: 2 };
        assert!(e.to_string().contains('4'));

        let e = CwsError::ShardWorkerPanicked { shard: 3, message: "boom".into() };
        assert!(e.to_string().contains("shard 3"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&CwsError::EmptyAssignmentSet);
    }
}
