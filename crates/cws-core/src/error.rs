//! Error type for the coordinated weighted sampling library.

use std::fmt;

/// Result alias using [`CwsError`].
pub type Result<T> = std::result::Result<T, CwsError>;

/// Errors produced by the sampling and estimation routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CwsError {
    /// The requested estimator does not exist for this configuration.
    ///
    /// The canonical example from the paper: there is no nonnegative unbiased
    /// estimator for `max` or `L1` over *independent* sketches when seeds are
    /// unknown (Section 9.2, footnote 3).
    UnsupportedEstimator {
        /// The estimator that was requested.
        estimator: &'static str,
        /// Why the configuration cannot support it.
        reason: &'static str,
    },
    /// An assignment index was out of range for the data set or summary.
    AssignmentOutOfRange {
        /// The offending index.
        index: usize,
        /// The number of assignments available.
        available: usize,
    },
    /// A set of relevant assignments `R` was empty.
    EmptyAssignmentSet,
    /// A parameter had an invalid value (negative weight, zero sample size…).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The independent-differences construction requires EXP ranks.
    IndependentDifferencesRequiresExp,
    /// ℓ (top-ℓ dependence order) was outside `1..=|R|`.
    InvalidDependenceOrder {
        /// The requested ℓ.
        ell: usize,
        /// The size of the relevant assignment set.
        relevant: usize,
    },
    /// A sharded-ingestion worker thread panicked; the partial summaries are
    /// unusable and the whole pass must be re-run.
    ShardWorkerPanicked {
        /// Index of the shard whose worker died.
        shard: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A sharded-ingestion worker failed to accept a batch or return a
    /// buffer within the stall timeout. The worker may still be alive (a
    /// slow disk, scheduler starvation); the push that observed the stall
    /// did **not** ingest its records and can be retried, escalated to
    /// [`ShardedDispersedSampler::respawn`](https://docs.rs/cws-stream), or
    /// reported to the operator.
    ShardStalled {
        /// Index of the stalled shard.
        shard: usize,
        /// The timeout that expired, in milliseconds.
        timeout_ms: u64,
    },
    /// A snapshot-store filesystem operation failed (create, write, fsync,
    /// rename, scan, remove). The store directory is never left in a state
    /// that `recover()` cannot repair: publishes are temp-file + fsync +
    /// rename, so a failure mid-publish leaves the previous epoch intact.
    Store {
        /// The operation that failed (`"create"`, `"write"`, `"rename"`…).
        op: &'static str,
        /// The path involved, rendered to text.
        path: String,
        /// The underlying error, rendered to text.
        message: String,
    },
    /// A serialized summary could not be decoded (or written): the input is
    /// truncated, corrupted, from an unknown format version, or an I/O
    /// operation failed. Every malformed input maps to one of the
    /// [`CodecErrorKind`] variants — decoding never panics and never yields a
    /// silently wrong summary.
    Codec {
        /// What exactly was malformed.
        kind: CodecErrorKind,
        /// Byte offset into the encoded stream where the problem was
        /// detected (0 for write-side failures).
        offset: u64,
    },
    /// Summaries offered for merging disagree on a configuration field
    /// (`k`, rank family, coordination mode, seed, layout, effective sample
    /// size or assignment count). Merging them would silently produce a
    /// wrong answer, so the mismatch is a typed error instead.
    IncompatibleSummaries {
        /// The configuration field that disagrees.
        field: &'static str,
        /// Human-readable description of the two values.
        details: String,
    },
    /// An operation would have pushed a tracked resource past its
    /// [`ResourceBudget`](crate::budget::ResourceBudget) cap. The operation
    /// did **not** partially apply: the state it guards is exactly what it
    /// was before the call, so the caller can flush/finalize to reclaim the
    /// resource and retry, or drop the work.
    BudgetExceeded {
        /// Which resource ran out (`"bytes"` or `"keys"`).
        resource: &'static str,
        /// How much was in use before the rejected operation.
        used: u64,
        /// How much the rejected operation additionally needed.
        requested: u64,
        /// The configured cap.
        limit: u64,
    },
    /// A wall-clock deadline expired before the operation completed. The
    /// deadline is checked at chunk boundaries, so the guarded state is
    /// consistent (nothing half-applied) and the same call can be retried
    /// with a fresh deadline.
    DeadlineExceeded {
        /// The operation that ran out of time (`"query"`, `"ingest"`…).
        op: &'static str,
        /// How long the operation was allowed to run, in milliseconds.
        budget_ms: u64,
    },
    /// An admission-controlled stage (the sharded in-flight batch window)
    /// is at capacity and the caller asked not to block. The push did not
    /// ingest its records; retry after a backoff (see
    /// [`RetryPolicy`](crate::budget::RetryPolicy)) or shed the load.
    Overloaded {
        /// The stage that refused admission (`"shard"`, `"aggregator"`…).
        stage: &'static str,
        /// How many units were already in flight.
        in_flight: usize,
        /// The admission cap that was hit.
        capacity: usize,
    },
}

/// The precise way a serialized summary was malformed (the payload of
/// [`CwsError::Codec`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecErrorKind {
    /// The stream does not start with the `CWSM` magic bytes.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The format version is not one this decoder understands.
    UnsupportedVersion {
        /// The version declared by the stream.
        found: u16,
    },
    /// A tag byte (layout, rank family, coordination mode, reserved pad) had
    /// a value outside its legal range.
    InvalidTag {
        /// Which tag field was malformed.
        field: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// The stream ended before a required field could be read.
    Truncated {
        /// Number of additional bytes the decoder needed.
        expected: u64,
    },
    /// A declared entry count exceeds what the header admits, so reading it
    /// would either allocate unboundedly or fabricate entries that cannot
    /// exist.
    LengthOverflow {
        /// The count declared by the stream.
        declared: u64,
        /// The largest count the header allows.
        limit: u64,
    },
    /// A checksum did not match: the covered bytes were altered after
    /// encoding.
    ChecksumMismatch {
        /// Which section's checksum failed (`"header"` or `"body"`).
        section: &'static str,
    },
    /// A structurally readable field carried a semantically impossible value
    /// (non-finite rank, non-positive weight, unsorted entries, …).
    Invalid {
        /// Description of the violated invariant.
        what: String,
    },
    /// The underlying reader or writer failed with a non-EOF I/O error.
    Io {
        /// The I/O error, rendered to text.
        message: String,
    },
}

impl fmt::Display for CodecErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecErrorKind::BadMagic { found } => {
                write!(f, "bad magic bytes {found:?} (expected `CWSM`)")
            }
            CodecErrorKind::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            CodecErrorKind::InvalidTag { field, value } => {
                write!(f, "invalid `{field}` tag byte {value:#04x}")
            }
            CodecErrorKind::Truncated { expected } => {
                write!(f, "truncated input: {expected} more byte(s) required")
            }
            CodecErrorKind::LengthOverflow { declared, limit } => {
                write!(f, "declared length {declared} exceeds the limit {limit}")
            }
            CodecErrorKind::ChecksumMismatch { section } => {
                write!(f, "{section} checksum mismatch")
            }
            CodecErrorKind::Invalid { what } => write!(f, "invalid content: {what}"),
            CodecErrorKind::Io { message } => write!(f, "i/o failure: {message}"),
        }
    }
}

impl fmt::Display for CwsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CwsError::UnsupportedEstimator { estimator, reason } => {
                write!(f, "estimator `{estimator}` is not supported: {reason}")
            }
            CwsError::AssignmentOutOfRange { index, available } => {
                write!(f, "assignment index {index} out of range (only {available} assignments)")
            }
            CwsError::EmptyAssignmentSet => {
                write!(f, "the set of relevant assignments must not be empty")
            }
            CwsError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            CwsError::IndependentDifferencesRequiresExp => {
                write!(f, "independent-differences consistent ranks are only defined for EXP ranks")
            }
            CwsError::InvalidDependenceOrder { ell, relevant } => {
                write!(f, "dependence order ell={ell} must lie in 1..={relevant}")
            }
            CwsError::ShardWorkerPanicked { shard, message } => {
                write!(f, "shard {shard} worker thread panicked: {message}")
            }
            CwsError::ShardStalled { shard, timeout_ms } => {
                write!(f, "shard {shard} did not accept traffic within {timeout_ms} ms (stalled)")
            }
            CwsError::Store { op, path, message } => {
                write!(f, "snapshot store `{op}` failed on `{path}`: {message}")
            }
            CwsError::Codec { kind, offset } => {
                write!(f, "summary codec error at byte {offset}: {kind}")
            }
            CwsError::IncompatibleSummaries { field, details } => {
                write!(f, "summaries cannot be merged: `{field}` differs ({details})")
            }
            CwsError::BudgetExceeded { resource, used, requested, limit } => {
                write!(
                    f,
                    "{resource} budget exceeded: {used} in use + {requested} requested > \
                     limit {limit}"
                )
            }
            CwsError::DeadlineExceeded { op, budget_ms } => {
                write!(f, "`{op}` deadline exceeded after {budget_ms} ms")
            }
            CwsError::Overloaded { stage, in_flight, capacity } => {
                write!(f, "{stage} overloaded: {in_flight} of {capacity} admission slots in flight")
            }
        }
    }
}

impl std::error::Error for CwsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CwsError::AssignmentOutOfRange { index: 5, available: 3 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));

        let e = CwsError::UnsupportedEstimator { estimator: "max", reason: "independent sketches" };
        assert!(e.to_string().contains("max"));

        let e = CwsError::InvalidParameter { name: "k", message: "must be positive".into() };
        assert!(e.to_string().contains('k'));

        let e = CwsError::InvalidDependenceOrder { ell: 4, relevant: 2 };
        assert!(e.to_string().contains('4'));

        let e = CwsError::ShardWorkerPanicked { shard: 3, message: "boom".into() };
        assert!(e.to_string().contains("shard 3"));
        assert!(e.to_string().contains("boom"));

        let e = CwsError::ShardStalled { shard: 2, timeout_ms: 250 };
        assert!(e.to_string().contains("shard 2"));
        assert!(e.to_string().contains("250"));

        let e = CwsError::Store { op: "rename", path: "/tmp/x".into(), message: "denied".into() };
        assert!(e.to_string().contains("rename"));
        assert!(e.to_string().contains("/tmp/x"));
        assert!(e.to_string().contains("denied"));

        let e = CwsError::Codec { kind: CodecErrorKind::Truncated { expected: 8 }, offset: 17 };
        assert!(e.to_string().contains("byte 17"));
        assert!(e.to_string().contains("8 more"));

        let e = CwsError::IncompatibleSummaries { field: "seed", details: "1 vs 2".into() };
        assert!(e.to_string().contains("seed"));
        assert!(e.to_string().contains("1 vs 2"));

        let e = CwsError::BudgetExceeded { resource: "bytes", used: 96, requested: 32, limit: 100 };
        assert!(e.to_string().contains("bytes"));
        assert!(e.to_string().contains("96"));
        assert!(e.to_string().contains("32"));
        assert!(e.to_string().contains("100"));

        let e = CwsError::DeadlineExceeded { op: "query", budget_ms: 250 };
        assert!(e.to_string().contains("query"));
        assert!(e.to_string().contains("250"));

        let e = CwsError::Overloaded { stage: "shard", in_flight: 4, capacity: 4 };
        assert!(e.to_string().contains("shard"));
        assert!(e.to_string().contains("4 of 4"));
    }

    #[test]
    fn codec_kind_display_names_the_problem() {
        for (kind, needle) in [
            (CodecErrorKind::BadMagic { found: *b"NOPE" }, "magic"),
            (CodecErrorKind::UnsupportedVersion { found: 9 }, "version 9"),
            (CodecErrorKind::InvalidTag { field: "layout", value: 7 }, "layout"),
            (CodecErrorKind::LengthOverflow { declared: 10, limit: 4 }, "exceeds"),
            (CodecErrorKind::ChecksumMismatch { section: "body" }, "body checksum"),
            (CodecErrorKind::Invalid { what: "negative weight".into() }, "negative weight"),
            (CodecErrorKind::Io { message: "pipe".into() }, "pipe"),
        ] {
            assert!(kind.to_string().contains(needle), "{kind}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&CwsError::EmptyAssignmentSet);
    }
}
