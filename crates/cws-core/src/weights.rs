//! Weighted sets and multi-assignment data sets.
//!
//! The paper models data as a set of keys `I` together with a set `W` of
//! weight assignments, each mapping keys to non-negative reals (Section 4).
//! [`WeightedSet`] is the single-assignment special case used by the basic
//! sketches of Section 3; [`MultiWeighted`] holds the full key → weight-vector
//! mapping used by the multi-assignment summaries and estimators.

use std::collections::HashMap;

/// Key identifier.
///
/// Keys are 64-bit identifiers; applications map their natural keys (IP
/// 4-tuples, ticker symbols, movie ids, …) to `u64`, typically via
/// [`cws_hash::KeyHasher`] or an interning table kept by the data layer.
pub type Key = u64;

/// A single weight assignment over a set of keys: the weighted set `(I, w)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSet {
    keys: Vec<Key>,
    weights: Vec<f64>,
    index: HashMap<Key, usize>,
    total: f64,
}

impl WeightedSet {
    /// Creates a weighted set from `(key, weight)` pairs.
    ///
    /// Duplicate keys have their weights summed (the "aggregated data" model
    /// of the paper: each key appears once with its total weight). Negative
    /// weights are rejected.
    #[must_use = "building a weighted set has no side effects"]
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (Key, f64)>,
    {
        let mut index: HashMap<Key, usize> = HashMap::new();
        let mut keys = Vec::new();
        let mut weights = Vec::new();
        for (key, weight) in pairs {
            assert!(weight >= 0.0 && weight.is_finite(), "weights must be finite and non-negative");
            match index.get(&key) {
                Some(&slot) => weights[slot] += weight,
                None => {
                    index.insert(key, keys.len());
                    keys.push(key);
                    weights.push(weight);
                }
            }
        }
        let total = weights.iter().sum();
        Self { keys, weights, index, total }
    }

    /// Number of keys (including keys whose weight is zero).
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if the set holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The keys of the set, in insertion order.
    #[must_use]
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// The weight of `key`, or `0` if the key is absent.
    #[must_use]
    pub fn weight(&self, key: Key) -> f64 {
        self.index.get(&key).map_or(0.0, |&slot| self.weights[slot])
    }

    /// Total weight `w(I)`.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of keys with strictly positive weight.
    #[must_use]
    pub fn positive_len(&self) -> usize {
        self.weights.iter().filter(|&&w| w > 0.0).count()
    }

    /// Iterates over `(key, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Key, f64)> + '_ {
        self.keys.iter().copied().zip(self.weights.iter().copied())
    }

    /// Total weight of the keys selected by `predicate`.
    #[must_use]
    pub fn subset_total<P: Fn(Key) -> bool>(&self, predicate: P) -> f64 {
        self.iter().filter(|&(key, _)| predicate(key)).map(|(_, w)| w).sum()
    }
}

/// A multi-assignment data set: every key has a weight vector with one entry
/// per assignment in `W`.
///
/// The representation is dense row-major storage (`|I| × |W|`), which is the
/// natural format for the colocated model and is also what the evaluation
/// harness uses as ground truth for the dispersed model.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiWeighted {
    num_assignments: usize,
    keys: Vec<Key>,
    weights: Vec<f64>,
    index: HashMap<Key, usize>,
}

impl MultiWeighted {
    /// Starts building a data set with `num_assignments` weight assignments.
    #[must_use]
    pub fn builder(num_assignments: usize) -> MultiWeightedBuilder {
        assert!(num_assignments > 0, "at least one weight assignment is required");
        MultiWeightedBuilder {
            num_assignments,
            keys: Vec::new(),
            weights: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of weight assignments `|W|`.
    #[must_use]
    pub fn num_assignments(&self) -> usize {
        self.num_assignments
    }

    /// Number of distinct keys `|I|`.
    #[must_use]
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// `true` if the data set holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The keys, in insertion order.
    #[must_use]
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// The weight `w^(b)(key)`; `0` for absent keys.
    ///
    /// # Panics
    /// Panics if `assignment >= num_assignments`.
    #[must_use]
    pub fn weight(&self, key: Key, assignment: usize) -> f64 {
        assert!(assignment < self.num_assignments, "assignment out of range");
        self.index
            .get(&key)
            .map_or(0.0, |&row| self.weights[row * self.num_assignments + assignment])
    }

    /// The full weight vector of `key`, or `None` if the key is absent.
    #[must_use]
    pub fn weight_vector(&self, key: Key) -> Option<&[f64]> {
        self.index
            .get(&key)
            .map(|&row| &self.weights[row * self.num_assignments..(row + 1) * self.num_assignments])
    }

    /// Iterates over `(key, weight_vector)`.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &[f64])> + '_ {
        self.keys.iter().copied().enumerate().map(move |(row, key)| {
            (key, &self.weights[row * self.num_assignments..(row + 1) * self.num_assignments])
        })
    }

    /// Total weight of assignment `b`: `Σ_i w^(b)(i)`.
    #[must_use]
    pub fn assignment_total(&self, assignment: usize) -> f64 {
        assert!(assignment < self.num_assignments, "assignment out of range");
        self.iter().map(|(_, wv)| wv[assignment]).sum()
    }

    /// Number of keys with a strictly positive weight under assignment `b`.
    #[must_use]
    pub fn assignment_support(&self, assignment: usize) -> usize {
        assert!(assignment < self.num_assignments, "assignment out of range");
        self.iter().filter(|(_, wv)| wv[assignment] > 0.0).count()
    }

    /// Extracts assignment `b` as a stand-alone [`WeightedSet`].
    #[must_use]
    pub fn single(&self, assignment: usize) -> WeightedSet {
        assert!(assignment < self.num_assignments, "assignment out of range");
        WeightedSet::from_pairs(self.iter().map(|(key, wv)| (key, wv[assignment])))
    }

    /// `true` if `key` is present in the data set (possibly with an all-zero
    /// weight vector).
    #[must_use]
    pub fn contains(&self, key: Key) -> bool {
        self.index.contains_key(&key)
    }
}

/// Incremental builder for [`MultiWeighted`].
#[derive(Debug, Clone)]
pub struct MultiWeightedBuilder {
    num_assignments: usize,
    keys: Vec<Key>,
    weights: Vec<f64>,
    index: HashMap<Key, usize>,
}

impl MultiWeightedBuilder {
    /// Adds `weight` to `w^(assignment)(key)` (weights accumulate, mirroring
    /// the aggregation of raw records such as packets into flow weights).
    ///
    /// # Panics
    /// Panics if `assignment` is out of range or `weight` is negative or
    /// non-finite.
    pub fn add(&mut self, key: Key, assignment: usize, weight: f64) -> &mut Self {
        assert!(assignment < self.num_assignments, "assignment out of range");
        assert!(weight >= 0.0 && weight.is_finite(), "weights must be finite and non-negative");
        let row = match self.index.get(&key) {
            Some(&row) => row,
            None => {
                let row = self.keys.len();
                self.index.insert(key, row);
                self.keys.push(key);
                self.weights.extend(std::iter::repeat_n(0.0, self.num_assignments));
                row
            }
        };
        self.weights[row * self.num_assignments + assignment] += weight;
        self
    }

    /// Adds an entire weight vector for `key` (entries accumulate).
    ///
    /// # Panics
    /// Panics if the vector length differs from the number of assignments.
    pub fn add_vector(&mut self, key: Key, weights: &[f64]) -> &mut Self {
        assert_eq!(weights.len(), self.num_assignments, "weight vector length mismatch");
        for (assignment, &weight) in weights.iter().enumerate() {
            if weight != 0.0 {
                self.add(key, assignment, weight);
            } else if !self.index.contains_key(&key) {
                // Make sure the key exists even if this entry is zero.
                self.add(key, assignment, 0.0);
            }
        }
        self
    }

    /// Number of keys added so far.
    #[must_use]
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Finalizes the data set.
    #[must_use]
    pub fn build(self) -> MultiWeighted {
        MultiWeighted {
            num_assignments: self.num_assignments,
            keys: self.keys,
            weights: self.weights,
            index: self.index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> MultiWeighted {
        // The data set of Figure 2 (A): keys i1..i6, three assignments.
        let w1 = [15.0, 0.0, 10.0, 5.0, 10.0, 10.0];
        let w2 = [20.0, 10.0, 12.0, 20.0, 0.0, 10.0];
        let w3 = [10.0, 15.0, 15.0, 0.0, 15.0, 10.0];
        let mut b = MultiWeighted::builder(3);
        for key in 0..6u64 {
            b.add(key, 0, w1[key as usize]);
            b.add(key, 1, w2[key as usize]);
            b.add(key, 2, w3[key as usize]);
        }
        b.build()
    }

    #[test]
    fn weighted_set_accumulates_duplicates() {
        let set = WeightedSet::from_pairs(vec![(1, 2.0), (2, 3.0), (1, 5.0)]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.weight(1), 7.0);
        assert_eq!(set.weight(2), 3.0);
        assert_eq!(set.weight(99), 0.0);
        assert_eq!(set.total(), 10.0);
    }

    #[test]
    fn weighted_set_subset_total() {
        let set = WeightedSet::from_pairs((0u64..10).map(|k| (k, k as f64)));
        assert_eq!(set.subset_total(|k| k % 2 == 0), 0.0 + 2.0 + 4.0 + 6.0 + 8.0);
        assert_eq!(set.positive_len(), 9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weighted_set_rejects_negative() {
        let _ = WeightedSet::from_pairs(vec![(1, -1.0)]);
    }

    #[test]
    fn multi_weighted_totals_match_figure2() {
        let data = example();
        assert_eq!(data.num_keys(), 6);
        assert_eq!(data.num_assignments(), 3);
        assert_eq!(data.assignment_total(0), 50.0);
        assert_eq!(data.assignment_total(1), 72.0);
        assert_eq!(data.assignment_total(2), 65.0);
        assert_eq!(data.assignment_support(0), 5);
        assert_eq!(data.assignment_support(1), 5);
        assert_eq!(data.assignment_support(2), 5);
    }

    #[test]
    fn multi_weighted_lookup() {
        let data = example();
        assert_eq!(data.weight(0, 1), 20.0);
        assert_eq!(data.weight(4, 1), 0.0);
        assert_eq!(data.weight(100, 0), 0.0);
        assert_eq!(data.weight_vector(3), Some(&[5.0, 20.0, 0.0][..]));
        assert_eq!(data.weight_vector(100), None);
        assert!(data.contains(5));
        assert!(!data.contains(6));
    }

    #[test]
    fn multi_weighted_single_view() {
        let data = example();
        let w2 = data.single(1);
        assert_eq!(w2.total(), 72.0);
        assert_eq!(w2.weight(1), 10.0);
        assert_eq!(w2.positive_len(), 5);
    }

    #[test]
    fn builder_accumulates_and_add_vector() {
        let mut b = MultiWeighted::builder(2);
        b.add(7, 0, 1.0).add(7, 0, 2.0).add_vector(8, &[0.0, 4.0]);
        assert_eq!(b.num_keys(), 2);
        let data = b.build();
        assert_eq!(data.weight(7, 0), 3.0);
        assert_eq!(data.weight(7, 1), 0.0);
        assert_eq!(data.weight(8, 1), 4.0);
        assert!(data.contains(8));
    }

    #[test]
    #[should_panic(expected = "assignment out of range")]
    fn builder_rejects_out_of_range_assignment() {
        let mut b = MultiWeighted::builder(2);
        b.add(1, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one weight assignment")]
    fn zero_assignments_rejected() {
        let _ = MultiWeighted::builder(0);
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let data = example();
        let keys: Vec<Key> = data.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 5]);
    }
}
