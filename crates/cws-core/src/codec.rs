//! Versioned binary serialization of finalized summaries.
//!
//! The paper's motivating workload is coordinated summaries of an *evolving*
//! database: snapshots taken over time, shipped between nodes, stored, and
//! merged. That requires summaries that outlive the process that built them,
//! which is what this hand-rolled codec provides — no serde, no external
//! crates, a fixed little-endian layout whose `f64` values travel as IEEE-754
//! bit patterns so a decode⟲encode round trip is **bit-exact**.
//!
//! # Wire format (version 1)
//!
//! All integers are little-endian; all `f64` values are written as the
//! little-endian bytes of [`f64::to_bits`]. The stream is
//! `header · body · body-checksum`, so multiple summaries can be
//! concatenated in one file and read back sequentially.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     4  magic `CWSM`
//!      4     2  format version (u16, currently 1)
//!      6     1  layout tag: 0 = colocated, 1 = dispersed
//!      7     1  rank family tag: 0 = EXP, 1 = IPPS
//!      8     1  coordination tag: 0 = independent, 1 = shared-seed,
//!               2 = independent-differences
//!      9     7  reserved, must be zero
//!     16     8  k (u64)
//!     24     8  master hash seed (u64)
//!     32     8  number of assignments (u64)
//!     40     8  header checksum: [`checksum`] of bytes 0..40
//! ```
//!
//! The **dispersed body** holds, per assignment, one length-prefixed sketch
//! section: `next_rank (f64) · entry_count (u64) · entry_count ×
//! (key u64 · rank f64 · weight f64)`, entries sorted ascending by
//! `(rank, key)`.
//!
//! The **colocated body** is `effective_k (u64) · kth_ranks (A × f64) ·
//! next_ranks (A × f64) · record_count (u64) · record_count × (key u64 ·
//! A × weight f64 · ⌈A/8⌉ membership bytes)`, records sorted ascending by
//! key; membership bit `b` of a record lives in byte `b / 8`, bit `b % 8`,
//! and padding bits must be zero.
//!
//! The body is followed by a `u64` [`checksum`] of every body byte. Both
//! checksums mean any single-byte corruption — header or body — surfaces as
//! a typed [`CwsError::Codec`], never as a silently wrong summary.
//!
//! # Versioning policy
//!
//! The version field is bumped whenever the byte layout changes; decoders
//! reject versions they do not know with
//! [`CodecErrorKind::UnsupportedVersion`] rather than guessing. The golden
//! fixture test (`tests/golden_fixture.rs` at the workspace root) pins the
//! current layout byte-for-byte, so accidental drift fails CI and a
//! deliberate format change is visible as a fixture + version bump in the
//! same commit.

use std::io::{Read, Write};

use cws_hash::KeyHasher;

use crate::coordination::CoordinationMode;
use crate::error::{CodecErrorKind, CwsError, Result};
use crate::ranks::RankFamily;
use crate::sketch::bottomk::{BottomKSketch, SketchEntry};
use crate::summary::{ColocatedRecord, ColocatedSummary, DispersedSummary, SummaryConfig};

/// The four magic bytes every serialized summary starts with.
pub const MAGIC: [u8; 4] = *b"CWSM";

/// The format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 48;

/// Largest `k` the codec accepts from a stream; a header declaring more is
/// rejected with [`CodecErrorKind::LengthOverflow`] before anything is
/// allocated.
pub const MAX_K: u64 = 1 << 32;

/// Largest assignment count the codec accepts from a stream.
pub const MAX_ASSIGNMENTS: u64 = 1 << 20;

/// Seed of the checksum hash stream (distinct from every rank/routing
/// stream; the checksum is for corruption detection, not sampling).
const CHECKSUM_STREAM: u64 = 0x5AAD_EDC0_DEC0_5EA1;

/// Seed of the write-ahead frame checksum stream — distinct from
/// [`CHECKSUM_STREAM`] so a summary body accidentally spliced into a
/// journal segment (or vice versa) can never pass verification.
const FRAME_CHECKSUM_STREAM: u64 = 0x7EA1_0F5E_C0DE_4A0B;

/// The checksum used by the header and body integrity fields: a seeded
/// 64-bit hash of the covered bytes. Exposed so fixture tooling and tests
/// can construct or repair encoded streams deliberately.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    KeyHasher::new(CHECKSUM_STREAM).hash_bytes(bytes)
}

/// The per-frame CRC of the write-ahead ingestion journal: a seeded 64-bit
/// hash over one frame's payload, on a hash stream distinct from
/// [`checksum`]. Torn-tail recovery truncates a journal segment at the
/// first frame whose stored CRC disagrees with this function.
#[must_use]
pub fn frame_checksum(bytes: &[u8]) -> u64 {
    KeyHasher::new(FRAME_CHECKSUM_STREAM).hash_bytes(bytes)
}

fn codec_error(kind: CodecErrorKind, offset: u64) -> CwsError {
    CwsError::Codec { kind, offset }
}

fn invalid(what: impl Into<String>, offset: u64) -> CwsError {
    codec_error(CodecErrorKind::Invalid { what: what.into() }, offset)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Byte-buffer encoder; the body is staged in memory (summaries are small —
/// `O(k · |W|)` entries) so the body checksum can be computed before
/// anything touches the writer.
struct Encoder {
    bytes: Vec<u8>,
}

impl Encoder {
    fn new() -> Self {
        Self { bytes: Vec::with_capacity(256) }
    }

    fn u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    fn f64(&mut self, value: f64) {
        self.bytes.extend_from_slice(&value.to_bits().to_le_bytes());
    }
}

fn layout_tag_colocated() -> u8 {
    0
}

fn layout_tag_dispersed() -> u8 {
    1
}

fn family_tag(family: RankFamily) -> u8 {
    match family {
        RankFamily::Exp => 0,
        RankFamily::Ipps => 1,
    }
}

fn mode_tag(mode: CoordinationMode) -> u8 {
    match mode {
        CoordinationMode::Independent => 0,
        CoordinationMode::SharedSeed => 1,
        CoordinationMode::IndependentDifferences => 2,
    }
}

fn encode_header(layout: u8, config: &SummaryConfig, num_assignments: usize) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6] = layout;
    header[7] = family_tag(config.family);
    header[8] = mode_tag(config.mode);
    // Bytes 9..16 are the reserved pad, already zero.
    header[16..24].copy_from_slice(&(config.k as u64).to_le_bytes());
    header[24..32].copy_from_slice(&config.seed.to_le_bytes());
    header[32..40].copy_from_slice(&(num_assignments as u64).to_le_bytes());
    let sum = checksum(&header[..40]);
    header[40..48].copy_from_slice(&sum.to_le_bytes());
    header
}

fn write_io_error(error: &std::io::Error) -> CwsError {
    codec_error(CodecErrorKind::Io { message: error.to_string() }, 0)
}

fn write_frame<W: Write>(
    writer: &mut W,
    layout: u8,
    config: &SummaryConfig,
    num_assignments: usize,
    body: &[u8],
) -> Result<()> {
    let header = encode_header(layout, config, num_assignments);
    writer.write_all(&header).map_err(|e| write_io_error(&e))?;
    writer.write_all(body).map_err(|e| write_io_error(&e))?;
    writer.write_all(&checksum(body).to_le_bytes()).map_err(|e| write_io_error(&e))?;
    Ok(())
}

/// Serializes a dispersed summary.
///
/// # Errors
/// Returns [`CwsError::Codec`] with [`CodecErrorKind::Io`] if the writer
/// fails; the encoding itself is infallible for any well-formed summary.
pub fn write_dispersed<W: Write>(summary: &DispersedSummary, writer: &mut W) -> Result<()> {
    let mut body = Encoder::new();
    for sketch in summary.sketches() {
        body.f64(sketch.next_rank());
        body.u64(sketch.len() as u64);
        for entry in sketch.entries() {
            body.u64(entry.key);
            body.f64(entry.rank);
            body.f64(entry.weight);
        }
    }
    write_frame(
        writer,
        layout_tag_dispersed(),
        summary.config(),
        summary.num_assignments(),
        &body.bytes,
    )
}

/// Serializes a colocated summary.
///
/// # Errors
/// As [`write_dispersed`].
pub fn write_colocated<W: Write>(summary: &ColocatedSummary, writer: &mut W) -> Result<()> {
    let assignments = summary.num_assignments();
    let mut body = Encoder::new();
    body.u64(summary.effective_k() as u64);
    for b in 0..assignments {
        body.f64(summary.kth_rank(b));
    }
    for b in 0..assignments {
        body.f64(summary.next_rank(b));
    }
    body.u64(summary.records().len() as u64);
    let membership_bytes = assignments.div_ceil(8);
    for record in summary.records() {
        body.u64(record.key);
        for &weight in &record.weights {
            body.f64(weight);
        }
        let mut bits = vec![0u8; membership_bytes];
        for (b, &in_sketch) in record.in_sketch.iter().enumerate() {
            if in_sketch {
                bits[b / 8] |= 1 << (b % 8);
            }
        }
        body.bytes.extend_from_slice(&bits);
    }
    write_frame(writer, layout_tag_colocated(), summary.config(), assignments, &body.bytes)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Offset-tracking reader that records every body byte for the trailing
/// checksum verification.
struct Decoder<R> {
    inner: R,
    offset: u64,
    /// Body bytes read so far (`None` while reading the header).
    recorded: Option<Vec<u8>>,
}

impl<R: Read> Decoder<R> {
    fn new(inner: R) -> Self {
        Self { inner, offset: 0, recorded: None }
    }

    fn start_body(&mut self) {
        self.recorded = Some(Vec::with_capacity(256));
    }

    /// The recorded body bytes (empties the recording buffer).
    fn take_body(&mut self) -> Vec<u8> {
        self.recorded.take().unwrap_or_default()
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(codec_error(
                        CodecErrorKind::Truncated { expected: (buf.len() - filled) as u64 },
                        self.offset + filled as u64,
                    ));
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(codec_error(
                        CodecErrorKind::Io { message: e.to_string() },
                        self.offset + filled as u64,
                    ));
                }
            }
        }
        self.offset += buf.len() as u64;
        if let Some(recorded) = &mut self.recorded {
            recorded.extend_from_slice(buf);
        }
        Ok(())
    }

    fn u64(&mut self) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// The decoded header: layout plus the validated configuration.
struct Header {
    layout: u8,
    config: SummaryConfig,
    num_assignments: usize,
}

fn decode_header<R: Read>(decoder: &mut Decoder<R>) -> Result<Header> {
    let mut header = [0u8; HEADER_LEN];
    decoder.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&header[0..4]);
        return Err(codec_error(CodecErrorKind::BadMagic { found }, 0));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(codec_error(CodecErrorKind::UnsupportedVersion { found: version }, 4));
    }
    let declared = u64::from_le_bytes(header[40..48].try_into().expect("8-byte slice"));
    if declared != checksum(&header[..40]) {
        return Err(codec_error(CodecErrorKind::ChecksumMismatch { section: "header" }, 40));
    }
    let layout = header[6];
    if layout > 1 {
        return Err(codec_error(CodecErrorKind::InvalidTag { field: "layout", value: layout }, 6));
    }
    let family = match header[7] {
        0 => RankFamily::Exp,
        1 => RankFamily::Ipps,
        value => {
            return Err(codec_error(CodecErrorKind::InvalidTag { field: "rank family", value }, 7));
        }
    };
    let mode = match header[8] {
        0 => CoordinationMode::Independent,
        1 => CoordinationMode::SharedSeed,
        2 => CoordinationMode::IndependentDifferences,
        value => {
            return Err(codec_error(
                CodecErrorKind::InvalidTag { field: "coordination", value },
                8,
            ));
        }
    };
    if let Some(&value) = header[9..16].iter().find(|&&byte| byte != 0) {
        return Err(codec_error(CodecErrorKind::InvalidTag { field: "reserved", value }, 9));
    }
    let k = u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
    if k > MAX_K {
        return Err(codec_error(CodecErrorKind::LengthOverflow { declared: k, limit: MAX_K }, 16));
    }
    let seed = u64::from_le_bytes(header[24..32].try_into().expect("8-byte slice"));
    let num_assignments = u64::from_le_bytes(header[32..40].try_into().expect("8-byte slice"));
    if num_assignments > MAX_ASSIGNMENTS {
        return Err(codec_error(
            CodecErrorKind::LengthOverflow { declared: num_assignments, limit: MAX_ASSIGNMENTS },
            32,
        ));
    }
    if num_assignments == 0 {
        return Err(invalid("a summary must cover at least one assignment", 32));
    }
    let config = SummaryConfig::try_new(k as usize, family, mode, seed)
        .map_err(|e| invalid(format!("header declares an invalid configuration: {e}"), 16))?;
    if layout == layout_tag_dispersed() && mode == CoordinationMode::IndependentDifferences {
        return Err(invalid(
            "independent-differences ranks cannot appear in a dispersed summary",
            8,
        ));
    }
    Ok(Header { layout, config, num_assignments: num_assignments as usize })
}

fn verify_body_checksum<R: Read>(decoder: &mut Decoder<R>) -> Result<()> {
    let body = decoder.take_body();
    let expected = checksum(&body);
    let declared = decoder.u64()?;
    if declared != expected {
        return Err(codec_error(
            CodecErrorKind::ChecksumMismatch { section: "body" },
            decoder.offset - 8,
        ));
    }
    Ok(())
}

fn decode_sketch<R: Read>(decoder: &mut Decoder<R>, k: usize) -> Result<BottomKSketch> {
    let next_rank = decoder.f64()?;
    if next_rank.is_nan() || next_rank < 0.0 {
        return Err(invalid("next rank must be non-negative or +∞", decoder.offset - 8));
    }
    let count_offset = decoder.offset;
    let count = decoder.u64()?;
    if count > k as u64 {
        return Err(codec_error(
            CodecErrorKind::LengthOverflow { declared: count, limit: k as u64 },
            count_offset,
        ));
    }
    let mut entries: Vec<SketchEntry> = Vec::with_capacity(count as usize);
    let mut seen = std::collections::HashSet::with_capacity(count as usize);
    for _ in 0..count {
        let entry_offset = decoder.offset;
        let key = decoder.u64()?;
        let rank = decoder.f64()?;
        let weight = decoder.f64()?;
        if !rank.is_finite() {
            return Err(invalid(format!("entry of key {key} has a non-finite rank"), entry_offset));
        }
        if !weight.is_finite() || weight <= 0.0 {
            return Err(invalid(
                format!("entry of key {key} has a non-positive or non-finite weight"),
                entry_offset,
            ));
        }
        if let Some(last) = entries.last() {
            let order = last.rank.total_cmp(&rank).then_with(|| last.key.cmp(&key));
            if order != std::cmp::Ordering::Less {
                return Err(invalid(
                    "sketch entries must be strictly ascending by (rank, key)",
                    entry_offset,
                ));
            }
        }
        if !seen.insert(key) {
            return Err(invalid(format!("key {key} appears twice in one sketch"), entry_offset));
        }
        entries.push(SketchEntry { key, rank, weight });
    }
    if entries.last().is_some_and(|last| last.rank > next_rank) {
        return Err(invalid("next rank undercuts a retained entry", decoder.offset));
    }
    Ok(BottomKSketch::from_sorted_parts(k, entries, next_rank))
}

fn decode_dispersed_body<R: Read>(
    decoder: &mut Decoder<R>,
    header: &Header,
) -> Result<DispersedSummary> {
    let mut sketches = Vec::with_capacity(header.num_assignments);
    for _ in 0..header.num_assignments {
        sketches.push(decode_sketch(decoder, header.config.k)?);
    }
    verify_body_checksum(decoder)?;
    Ok(DispersedSummary::from_sketches(header.config, sketches))
}

fn decode_colocated_body<R: Read>(
    decoder: &mut Decoder<R>,
    header: &Header,
) -> Result<ColocatedSummary> {
    let assignments = header.num_assignments;
    let effective_offset = decoder.offset;
    let effective_k = decoder.u64()?;
    if effective_k > MAX_K {
        return Err(codec_error(
            CodecErrorKind::LengthOverflow { declared: effective_k, limit: MAX_K },
            effective_offset,
        ));
    }
    if effective_k == 0 {
        return Err(invalid("effective sample size must be positive", effective_offset));
    }
    let mut kth_ranks = Vec::with_capacity(assignments);
    let mut next_ranks = Vec::with_capacity(assignments);
    for ranks in [&mut kth_ranks, &mut next_ranks] {
        for _ in 0..assignments {
            let rank = decoder.f64()?;
            if rank.is_nan() || rank < 0.0 {
                return Err(invalid(
                    "per-assignment ranks must be non-negative or +∞",
                    decoder.offset - 8,
                ));
            }
            ranks.push(rank);
        }
    }
    if kth_ranks.iter().zip(&next_ranks).any(|(kth, next)| kth > next) {
        return Err(invalid("an ℓ-th rank exceeds its (ℓ+1)-st rank", decoder.offset));
    }
    let count_offset = decoder.offset;
    let record_count = decoder.u64()?;
    let record_limit = effective_k.saturating_mul(assignments as u64);
    if record_count > record_limit {
        return Err(codec_error(
            CodecErrorKind::LengthOverflow { declared: record_count, limit: record_limit },
            count_offset,
        ));
    }
    let membership_bytes = assignments.div_ceil(8);
    let mut records: Vec<ColocatedRecord> = Vec::with_capacity(record_count as usize);
    let mut per_assignment_members = vec![0u64; assignments];
    let mut bits = vec![0u8; membership_bytes];
    for _ in 0..record_count {
        let record_offset = decoder.offset;
        let key = decoder.u64()?;
        if let Some(last) = records.last() {
            if last.key >= key {
                return Err(invalid("records must be strictly ascending by key", record_offset));
            }
        }
        let mut weights = Vec::with_capacity(assignments);
        for _ in 0..assignments {
            let weight = decoder.f64()?;
            if !weight.is_finite() || weight < 0.0 {
                return Err(invalid(
                    format!("record of key {key} has a negative or non-finite weight"),
                    decoder.offset - 8,
                ));
            }
            weights.push(weight);
        }
        decoder.read_exact(&mut bits)?;
        let mut in_sketch = Vec::with_capacity(assignments);
        for b in 0..assignments {
            let bit = bits[b / 8] >> (b % 8) & 1 == 1;
            if bit {
                per_assignment_members[b] += 1;
            }
            in_sketch.push(bit);
        }
        let padding = &bits[..];
        let used_bits = assignments % 8;
        let padded_last =
            if used_bits == 0 { 0 } else { padding[membership_bytes - 1] >> used_bits };
        if padded_last != 0 {
            return Err(invalid("membership padding bits must be zero", decoder.offset));
        }
        records.push(ColocatedRecord { key, weights, in_sketch });
    }
    if per_assignment_members.iter().any(|&members| members > effective_k) {
        return Err(invalid(
            "an embedded sample holds more members than the effective sample size",
            decoder.offset,
        ));
    }
    verify_body_checksum(decoder)?;
    Ok(ColocatedSummary::from_parts(
        header.config,
        effective_k as usize,
        kth_ranks,
        next_ranks,
        records,
    ))
}

/// A summary decoded from a stream — either layout, as declared by the
/// header's layout tag.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedSummary {
    /// The stream held a colocated summary.
    Colocated(ColocatedSummary),
    /// The stream held a dispersed summary.
    Dispersed(DispersedSummary),
}

/// Reads one summary (either layout) from `reader`, leaving the reader
/// positioned after its trailing checksum so concatenated summaries can be
/// read sequentially.
///
/// # Errors
/// Returns [`CwsError::Codec`] for every malformed input: bad magic, unknown
/// version, invalid tags, truncation at any point, declared-length
/// overflow, checksum mismatch, or semantically impossible content. Decoding
/// never panics on untrusted bytes.
pub fn read_summary<R: Read>(reader: &mut R) -> Result<DecodedSummary> {
    let mut decoder = Decoder::new(reader);
    let header = decode_header(&mut decoder)?;
    decoder.start_body();
    if header.layout == layout_tag_dispersed() {
        Ok(DecodedSummary::Dispersed(decode_dispersed_body(&mut decoder, &header)?))
    } else {
        Ok(DecodedSummary::Colocated(decode_colocated_body(&mut decoder, &header)?))
    }
}

/// Decodes exactly one summary from `bytes`, rejecting trailing garbage.
///
/// # Errors
/// As [`read_summary`]; additionally a typed error if `bytes` continues past
/// the summary's trailing checksum.
pub fn summary_from_bytes(bytes: &[u8]) -> Result<DecodedSummary> {
    let mut cursor = bytes;
    let summary = read_summary(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(invalid(
            format!("{} trailing byte(s) after the summary", cursor.len()),
            (bytes.len() - cursor.len()) as u64,
        ));
    }
    Ok(summary)
}

impl DispersedSummary {
    /// Serializes this summary in the versioned binary format of
    /// [`crate::codec`].
    ///
    /// # Errors
    /// Returns [`CwsError::Codec`] if the writer fails.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<()> {
        write_dispersed(self, writer)
    }

    /// The serialized bytes of this summary.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        self.write_to(&mut bytes).expect("writing to a Vec cannot fail");
        bytes
    }

    /// Reads a dispersed summary from `reader`.
    ///
    /// # Errors
    /// As [`read_summary`]; additionally a typed error if the stream holds a
    /// colocated summary.
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Self> {
        match read_summary(reader)? {
            DecodedSummary::Dispersed(summary) => Ok(summary),
            DecodedSummary::Colocated(_) => {
                Err(invalid("expected a dispersed summary, found a colocated one", 6))
            }
        }
    }
}

impl ColocatedSummary {
    /// Serializes this summary in the versioned binary format of
    /// [`crate::codec`].
    ///
    /// # Errors
    /// Returns [`CwsError::Codec`] if the writer fails.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<()> {
        write_colocated(self, writer)
    }

    /// The serialized bytes of this summary.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        self.write_to(&mut bytes).expect("writing to a Vec cannot fail");
        bytes
    }

    /// Reads a colocated summary from `reader`.
    ///
    /// # Errors
    /// As [`read_summary`]; additionally a typed error if the stream holds a
    /// dispersed summary.
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Self> {
        match read_summary(reader)? {
            DecodedSummary::Colocated(summary) => Ok(summary),
            DecodedSummary::Dispersed(_) => {
                Err(invalid("expected a colocated summary, found a dispersed one", 6))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::MultiWeighted;

    fn fixture() -> MultiWeighted {
        let mut builder = MultiWeighted::builder(3);
        for key in 0..300u64 {
            builder.add(key, 0, ((key % 11) + 1) as f64);
            builder.add(key, 1, ((key % 7) * 2) as f64);
            builder.add(key, 2, ((key % 13) + 3) as f64);
        }
        builder.build()
    }

    fn config(mode: CoordinationMode, family: RankFamily) -> SummaryConfig {
        SummaryConfig::new(16, family, mode, 99)
    }

    #[test]
    fn dispersed_round_trip_is_bit_exact() {
        let data = fixture();
        let summary =
            DispersedSummary::build(&data, &config(CoordinationMode::SharedSeed, RankFamily::Ipps));
        let bytes = summary.to_bytes();
        let decoded = DispersedSummary::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(decoded, summary);
        assert_eq!(decoded.to_bytes(), bytes, "re-encoding reproduces the bytes");
        for (a, b) in decoded.sketches().iter().zip(summary.sketches()) {
            assert_eq!(a.next_rank().to_bits(), b.next_rank().to_bits());
        }
    }

    #[test]
    fn colocated_round_trip_is_bit_exact() {
        let data = fixture();
        for (mode, family) in [
            (CoordinationMode::SharedSeed, RankFamily::Ipps),
            (CoordinationMode::Independent, RankFamily::Exp),
            (CoordinationMode::IndependentDifferences, RankFamily::Exp),
        ] {
            let summary = ColocatedSummary::build(&data, &config(mode, family));
            let bytes = summary.to_bytes();
            let decoded = ColocatedSummary::read_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(decoded, summary, "{mode:?} {family:?}");
            assert_eq!(decoded.to_bytes(), bytes);
        }
    }

    #[test]
    fn concatenated_summaries_read_sequentially() {
        let data = fixture();
        let cfg = config(CoordinationMode::SharedSeed, RankFamily::Ipps);
        let dispersed = DispersedSummary::build(&data, &cfg);
        let colocated = ColocatedSummary::build(&data, &cfg);
        let mut stream = Vec::new();
        dispersed.write_to(&mut stream).unwrap();
        colocated.write_to(&mut stream).unwrap();
        let mut cursor = stream.as_slice();
        assert_eq!(read_summary(&mut cursor).unwrap(), DecodedSummary::Dispersed(dispersed));
        assert_eq!(read_summary(&mut cursor).unwrap(), DecodedSummary::Colocated(colocated));
        assert!(cursor.is_empty());
    }

    #[test]
    fn layout_mismatch_is_a_typed_error() {
        let data = fixture();
        let cfg = config(CoordinationMode::SharedSeed, RankFamily::Ipps);
        let bytes = DispersedSummary::build(&data, &cfg).to_bytes();
        let err = ColocatedSummary::read_from(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, CwsError::Codec { kind: CodecErrorKind::Invalid { .. }, .. }));
    }

    #[test]
    fn trailing_bytes_are_rejected_by_from_bytes() {
        let data = fixture();
        let cfg = config(CoordinationMode::SharedSeed, RankFamily::Ipps);
        let mut bytes = DispersedSummary::build(&data, &cfg).to_bytes();
        assert!(summary_from_bytes(&bytes).is_ok());
        bytes.push(0);
        assert!(matches!(
            summary_from_bytes(&bytes),
            Err(CwsError::Codec { kind: CodecErrorKind::Invalid { .. }, .. })
        ));
    }

    #[test]
    fn frame_checksum_is_a_distinct_stream() {
        let bytes = b"the same covered bytes";
        assert_ne!(
            checksum(bytes),
            frame_checksum(bytes),
            "summary and journal-frame checksums must never collide by construction"
        );
    }

    #[test]
    fn empty_summary_round_trips() {
        let empty = MultiWeighted::builder(2).build();
        let cfg = SummaryConfig::new(4, RankFamily::Ipps, CoordinationMode::SharedSeed, 1);
        let summary = DispersedSummary::build(&empty, &cfg);
        assert_eq!(summary.num_distinct_keys(), 0);
        let decoded = DispersedSummary::read_from(&mut summary.to_bytes().as_slice()).unwrap();
        assert_eq!(decoded, summary);
    }
}
