//! Shared crash-safe filesystem primitives.
//!
//! Every durable artifact in the workspace — epoch snapshots, the advisory
//! store manifest, write-ahead journal segments — commits through the same
//! sequence: encode into `<name>.tmp`, `fsync` the file, rename it to its
//! final name, then `fsync` the containing directory so the rename itself
//! survives a power loss. The rename is the commit point; a crash anywhere
//! before it leaves at worst a `.tmp` leftover and never a torn file under
//! a final name.
//!
//! This module is that sequence, extracted so the snapshot store and the
//! ingestion journal cannot drift apart in their crash-safety story.

use std::fs;
use std::path::{Path, PathBuf};

use crate::error::{CwsError, Result};

/// Suffix of an in-flight (uncommitted) atomic write.
pub const TEMP_SUFFIX: &str = ".tmp";

/// Wraps a filesystem failure into the typed [`CwsError::Store`] the
/// durability layer reports everywhere.
#[must_use]
pub fn fs_error(op: &'static str, path: &Path, error: &std::io::Error) -> CwsError {
    CwsError::Store { op, path: path.display().to_string(), message: error.to_string() }
}

/// `<path>.tmp` — where an in-flight atomic write stages its bytes.
#[must_use]
pub fn temp_path(path: &Path) -> PathBuf {
    let mut temp = path.as_os_str().to_os_string();
    temp.push(TEMP_SUFFIX);
    PathBuf::from(temp)
}

/// Fsyncs a directory so renames within it are durable. On non-Unix
/// platforms directories cannot be opened for syncing; the rename is still
/// atomic, only its durability timing is left to the OS.
///
/// # Errors
/// [`CwsError::Store`] when the directory cannot be opened or synced.
pub fn sync_dir(dir: &Path) -> Result<()> {
    #[cfg(unix)]
    {
        let handle = fs::File::open(dir).map_err(|e| fs_error("open_dir", dir, &e))?;
        handle.sync_all().map_err(|e| fs_error("fsync_dir", dir, &e))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Atomically commits a file at `path`: stages the bytes `write` produces
/// into `<path>.tmp`, fsyncs the staged file, renames it into place, and
/// fsyncs the parent directory.
///
/// A crash at **any byte** of the sequence leaves either the previous
/// complete version of `path` (or its absence) plus at worst a `.tmp`
/// leftover — never a torn file under the final name. If `write` fails the
/// temp file is removed (best effort) and the error propagates untouched.
///
/// # Errors
/// [`CwsError::Store`] for filesystem failures; whatever `write` returns
/// for encoding failures.
pub fn atomic_write<F>(path: &Path, write: F) -> Result<()>
where
    F: FnOnce(&mut fs::File) -> Result<()>,
{
    let temp = temp_path(path);
    let mut file = fs::File::create(&temp).map_err(|e| fs_error("create", &temp, &e))?;
    let staged =
        write(&mut file).and_then(|()| file.sync_all().map_err(|e| fs_error("fsync", &temp, &e)));
    if let Err(error) = staged {
        // Best-effort cleanup; the leftover is harmless either way
        // (recovery passes remove temps).
        drop(file);
        let _ = fs::remove_file(&temp);
        return Err(error);
    }
    drop(file);
    fs::rename(&temp, path).map_err(|e| fs_error("rename", path, &e))?;
    if let Some(parent) = path.parent() {
        sync_dir(parent)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("cws-durable-{tag}-{}-{unique}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_commits_whole_files() {
        let dir = scratch_dir("commit");
        let path = dir.join("artifact.bin");
        atomic_write(&path, |file| {
            file.write_all(b"generation 1").map_err(|e| fs_error("write", &path, &e))
        })
        .unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"generation 1");
        assert!(!temp_path(&path).exists(), "the staging file is gone after commit");
        // Overwrites go through the same staged rename.
        atomic_write(&path, |file| {
            file.write_all(b"generation 2").map_err(|e| fs_error("write", &path, &e))
        })
        .unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"generation 2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_leaves_the_previous_version_untouched() {
        let dir = scratch_dir("fail");
        let path = dir.join("artifact.bin");
        atomic_write(&path, |file| {
            file.write_all(b"survivor").map_err(|e| fs_error("write", &path, &e))
        })
        .unwrap();
        let err = atomic_write(&path, |file| {
            file.write_all(b"half-").map_err(|e| fs_error("write", &path, &e))?;
            Err(CwsError::InvalidParameter { name: "test", message: "injected".to_string() })
        })
        .unwrap_err();
        assert!(matches!(err, CwsError::InvalidParameter { .. }));
        assert_eq!(fs::read(&path).unwrap(), b"survivor", "the commit point was never reached");
        assert!(!temp_path(&path).exists(), "the failed staging file is cleaned up");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_error_carries_op_and_path() {
        let err = fs_error("rename", Path::new("/tmp/x"), &std::io::Error::other("denied"));
        let text = err.to_string();
        assert!(text.contains("rename") && text.contains("/tmp/x") && text.contains("denied"));
    }
}
