//! The dispersed-weights summary: independent per-assignment bottom-k
//! sketches coordinated only through the shared hash seed (Section 7).

use std::collections::HashMap;

use crate::coordination::CoordinationMode;
use crate::ranks::RankFamily;
use crate::sketch::bottomk::BottomKSketch;
use crate::summary::SummaryConfig;
use crate::weights::{Key, MultiWeighted};

/// A multi-assignment summary in the dispersed-weights model.
///
/// The summary is exactly what a set of per-assignment processing sites can
/// produce without communicating: for every assignment `b`, a bottom-k sketch
/// of `(I, w^(b))` whose entries record only the weight under `b`. The sites
/// share nothing but the hash seed; coordination (or the lack of it) is
/// decided by the [`CoordinationMode`] of the configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DispersedSummary {
    config: SummaryConfig,
    sketches: Vec<BottomKSketch>,
    /// For every key in the union of the sketches: per assignment, its
    /// `(rank, weight)` pair if it is included in that sketch.
    membership: HashMap<Key, Vec<Option<(f64, f64)>>>,
}

impl DispersedSummary {
    /// Builds the summary from the full data set, simulating the dispersed
    /// per-assignment processing.
    ///
    /// # Panics
    /// Panics if the configuration uses
    /// [`CoordinationMode::IndependentDifferences`], which requires the whole
    /// weight vector at sampling time and therefore cannot be realized by
    /// dispersed processing (Section 4, "Computing coordinated sketches").
    #[must_use]
    pub fn build(data: &MultiWeighted, config: &SummaryConfig) -> Self {
        assert!(
            config.mode != CoordinationMode::IndependentDifferences,
            "independent-differences ranks are not suited for dispersed weights"
        );
        let generator = config.generator();
        let assignments = data.num_assignments();
        let mut sketches = Vec::with_capacity(assignments);
        for b in 0..assignments {
            // Each assignment is processed on its own, exactly as a dispersed
            // site would: it sees only (key, w^(b)(key)).
            let sketch = BottomKSketch::from_ranked(
                config.k,
                data.iter().map(|(key, weights)| {
                    let weight = weights[b];
                    let rank = generator
                        .dispersed_rank(key, weight, b)
                        .expect("mode checked above to support dispersed processing");
                    (key, rank, weight)
                }),
            );
            sketches.push(sketch);
        }
        Self::from_sketches(*config, sketches)
    }

    /// Assembles a summary from per-assignment sketches that were computed
    /// elsewhere (e.g. by the stream samplers of `cws-stream` or at remote
    /// sites).
    ///
    /// # Panics
    /// Panics if `sketches` is empty or the sketches disagree on `k`.
    #[must_use]
    pub fn from_sketches(config: SummaryConfig, sketches: Vec<BottomKSketch>) -> Self {
        assert!(!sketches.is_empty(), "at least one assignment is required");
        assert!(
            sketches.iter().all(|s| s.k() == config.k),
            "all sketches must use the configured k"
        );
        let assignments = sketches.len();
        let mut membership: HashMap<Key, Vec<Option<(f64, f64)>>> = HashMap::new();
        for (b, sketch) in sketches.iter().enumerate() {
            for entry in sketch.entries() {
                membership.entry(entry.key).or_insert_with(|| vec![None; assignments])[b] =
                    Some((entry.rank, entry.weight));
            }
        }
        Self { config, sketches, membership }
    }

    /// The configuration used to build the summary.
    #[must_use]
    pub fn config(&self) -> &SummaryConfig {
        &self.config
    }

    /// Per-assignment sample size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// The rank family.
    #[must_use]
    pub fn family(&self) -> RankFamily {
        self.config.family
    }

    /// The coordination mode.
    #[must_use]
    pub fn mode(&self) -> CoordinationMode {
        self.config.mode
    }

    /// Number of weight assignments summarized.
    #[must_use]
    pub fn num_assignments(&self) -> usize {
        self.sketches.len()
    }

    /// The embedded bottom-k sketch of assignment `b`.
    #[must_use]
    pub fn sketch(&self, assignment: usize) -> &BottomKSketch {
        &self.sketches[assignment]
    }

    /// All embedded sketches.
    #[must_use]
    pub fn sketches(&self) -> &[BottomKSketch] {
        &self.sketches
    }

    /// Number of distinct keys in the union of the embedded sketches — the
    /// storage footprint that coordination minimizes (Theorem 4.2).
    #[must_use]
    pub fn num_distinct_keys(&self) -> usize {
        self.membership.len()
    }

    /// Iterates over the keys in the union of the sketches.
    pub fn union_keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.membership.keys().copied()
    }

    /// The `(rank, weight)` of `key` in the sketch of `assignment`, if it was
    /// sampled there.
    #[must_use]
    pub fn entry(&self, key: Key, assignment: usize) -> Option<(f64, f64)> {
        self.membership.get(&key).and_then(|per| per[assignment])
    }

    /// Whether `key` appears in the sketch of `assignment`.
    #[must_use]
    pub fn in_sketch(&self, key: Key, assignment: usize) -> bool {
        self.entry(key, assignment).is_some()
    }

    /// `r_k^{(b)}(I \ {key})` — the rank-conditioning threshold: the
    /// `(k+1)`-st smallest rank of assignment `b` when `key` is in its
    /// sketch, the `k`-th smallest otherwise.
    #[must_use]
    pub fn threshold_excluding(&self, key: Key, assignment: usize) -> f64 {
        if self.in_sketch(key, assignment) {
            self.sketches[assignment].next_rank()
        } else {
            self.sketches[assignment].kth_rank()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordination::CoordinationMode;
    use crate::ranks::RankFamily;

    fn fixture() -> MultiWeighted {
        let mut builder = MultiWeighted::builder(3);
        for key in 0..500u64 {
            builder.add(key, 0, ((key % 11) + 1) as f64);
            builder.add(key, 1, ((key % 7) * 2) as f64);
            builder.add(key, 2, ((key % 13) + 3) as f64);
        }
        builder.build()
    }

    fn config(mode: CoordinationMode) -> SummaryConfig {
        SummaryConfig::new(20, RankFamily::Ipps, mode, 42)
    }

    #[test]
    fn build_produces_one_sketch_per_assignment() {
        let data = fixture();
        let summary = DispersedSummary::build(&data, &config(CoordinationMode::SharedSeed));
        assert_eq!(summary.num_assignments(), 3);
        assert_eq!(summary.k(), 20);
        for b in 0..3 {
            assert_eq!(summary.sketch(b).len(), 20);
        }
        assert_eq!(summary.family(), RankFamily::Ipps);
        assert_eq!(summary.mode(), CoordinationMode::SharedSeed);
        assert_eq!(summary.config().seed, 42);
    }

    #[test]
    fn union_size_bounds() {
        let data = fixture();
        for mode in [CoordinationMode::SharedSeed, CoordinationMode::Independent] {
            let summary = DispersedSummary::build(&data, &config(mode));
            let distinct = summary.num_distinct_keys();
            assert!(distinct >= 20, "{mode:?}: {distinct}");
            assert!(distinct <= 60, "{mode:?}: {distinct}");
            assert_eq!(summary.union_keys().count(), distinct);
        }
    }

    #[test]
    fn coordination_shares_more_keys_than_independence() {
        let data = fixture();
        let coordinated = DispersedSummary::build(&data, &config(CoordinationMode::SharedSeed));
        let independent = DispersedSummary::build(&data, &config(CoordinationMode::Independent));
        assert!(
            coordinated.num_distinct_keys() < independent.num_distinct_keys(),
            "coordinated {} vs independent {}",
            coordinated.num_distinct_keys(),
            independent.num_distinct_keys()
        );
    }

    #[test]
    fn membership_is_consistent_with_sketches() {
        let data = fixture();
        let summary = DispersedSummary::build(&data, &config(CoordinationMode::SharedSeed));
        for b in 0..3 {
            for entry in summary.sketch(b).entries() {
                assert!(summary.in_sketch(entry.key, b));
                let (rank, weight) = summary.entry(entry.key, b).unwrap();
                assert_eq!(rank, entry.rank);
                assert_eq!(weight, entry.weight);
                assert_eq!(weight, data.weight(entry.key, b));
            }
        }
        // A key absent from a sketch reports the k-th rank as threshold.
        let some_key = summary
            .union_keys()
            .find(|&key| !summary.in_sketch(key, 0))
            .expect("some union key missing from sketch 0");
        assert_eq!(summary.threshold_excluding(some_key, 0), summary.sketch(0).kth_rank());
        let member = summary.sketch(0).entries()[0].key;
        assert_eq!(summary.threshold_excluding(member, 0), summary.sketch(0).next_rank());
    }

    #[test]
    #[should_panic(expected = "not suited for dispersed weights")]
    fn independent_differences_rejected() {
        let data = fixture();
        let config =
            SummaryConfig::new(10, RankFamily::Exp, CoordinationMode::IndependentDifferences, 1);
        let _ = DispersedSummary::build(&data, &config);
    }

    #[test]
    fn from_sketches_roundtrip() {
        let data = fixture();
        let cfg = config(CoordinationMode::SharedSeed);
        let built = DispersedSummary::build(&data, &cfg);
        let reassembled = DispersedSummary::from_sketches(cfg, built.sketches().to_vec());
        assert_eq!(built, reassembled);
    }

    #[test]
    #[should_panic(expected = "configured k")]
    fn from_sketches_rejects_mismatched_k() {
        let data = fixture();
        let cfg = config(CoordinationMode::SharedSeed);
        let built = DispersedSummary::build(&data, &cfg);
        let wrong = SummaryConfig::new(5, cfg.family, cfg.mode, cfg.seed);
        let _ = DispersedSummary::from_sketches(wrong, built.sketches().to_vec());
    }
}
