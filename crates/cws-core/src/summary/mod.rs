//! Multi-assignment summaries: one embedded bottom-k sketch per assignment.
//!
//! * [`DispersedSummary`] — the dispersed-weights format (Section 7): each
//!   assignment is summarized independently; a key included in the sketch of
//!   assignment `b` carries only its weight under `b`.
//! * [`ColocatedSummary`] — the colocated format (Section 6): the summary
//!   stores, for every key included in *any* embedded sketch, the full weight
//!   vector, enabling the *inclusive* estimators.
//!
//! Both are parameterized by a [`SummaryConfig`]: the per-assignment sample
//! size `k`, the rank family, the coordination mode and the master hash seed
//! shared by all processing sites.

mod colocated;
mod dispersed;

pub use colocated::{ColocatedRecord, ColocatedSummary};
pub use dispersed::DispersedSummary;

use crate::coordination::{CoordinationMode, RankGenerator};
use crate::error::Result;
use crate::ranks::RankFamily;

/// Configuration shared by summary builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryConfig {
    /// Per-assignment sample size `k` (bottom-k).
    pub k: usize,
    /// Rank distribution family.
    pub family: RankFamily,
    /// Coordination mode across assignments.
    pub mode: CoordinationMode,
    /// Master seed of the shared hash function.
    pub seed: u64,
}

impl SummaryConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if `k == 0` or if the independent-differences mode is combined
    /// with IPPS ranks (that construction is EXP-specific). Use
    /// [`SummaryConfig::try_new`] for a non-panicking variant.
    #[must_use]
    pub fn new(k: usize, family: RankFamily, mode: CoordinationMode, seed: u64) -> Self {
        Self::try_new(k, family, mode, seed).expect("invalid summary configuration")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    /// Returns an error if `k == 0` or the rank family does not support the
    /// coordination mode.
    pub fn try_new(
        k: usize,
        family: RankFamily,
        mode: CoordinationMode,
        seed: u64,
    ) -> Result<Self> {
        if k == 0 {
            return Err(crate::error::CwsError::InvalidParameter {
                name: "k",
                message: "sample size must be positive".to_string(),
            });
        }
        // Validate the (family, mode) combination eagerly.
        let _ = RankGenerator::new(family, mode, seed)?;
        Ok(Self { k, family, mode, seed })
    }

    /// The rank generator implied by this configuration.
    #[must_use]
    pub fn generator(&self) -> RankGenerator {
        RankGenerator::new(self.family, self.mode, self.seed)
            .expect("configuration was validated at construction")
    }

    /// A copy of this configuration with a different master seed; the
    /// evaluation harness uses this for Monte-Carlo repetitions.
    #[must_use]
    pub fn with_seed(&self, seed: u64) -> Self {
        Self { seed, ..*self }
    }

    /// A copy with a different sample size.
    #[must_use]
    pub fn with_k(&self, k: usize) -> Self {
        assert!(k > 0, "sample size must be positive");
        Self { k, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(
            SummaryConfig::try_new(0, RankFamily::Ipps, CoordinationMode::SharedSeed, 1).is_err()
        );
        assert!(SummaryConfig::try_new(
            4,
            RankFamily::Ipps,
            CoordinationMode::IndependentDifferences,
            1
        )
        .is_err());
        let config =
            SummaryConfig::new(4, RankFamily::Exp, CoordinationMode::IndependentDifferences, 1);
        assert_eq!(config.k, 4);
    }

    #[test]
    #[should_panic(expected = "invalid summary configuration")]
    fn new_panics_on_invalid() {
        let _ = SummaryConfig::new(0, RankFamily::Ipps, CoordinationMode::SharedSeed, 1);
    }

    #[test]
    fn with_seed_and_k() {
        let config = SummaryConfig::new(4, RankFamily::Ipps, CoordinationMode::SharedSeed, 1);
        let other = config.with_seed(9).with_k(8);
        assert_eq!(other.seed, 9);
        assert_eq!(other.k, 8);
        assert_eq!(other.family, config.family);
        let gen = other.generator();
        assert_eq!(gen.family(), RankFamily::Ipps);
    }
}
