//! The colocated-weights summary: embedded per-assignment bottom-k samples
//! plus the full weight vector of every included key (Section 6).

use std::collections::HashMap;

use crate::coordination::CoordinationMode;
use crate::ranks::RankFamily;
use crate::sketch::bottomk::BottomKSketch;
use crate::summary::SummaryConfig;
use crate::weights::{Key, MultiWeighted};

/// One key retained in a colocated summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ColocatedRecord {
    /// The key.
    pub key: Key,
    /// Its full weight vector (colocated data makes this available for free
    /// once the key is sampled anywhere).
    pub weights: Vec<f64>,
    /// For each assignment, whether the key is in that embedded bottom-k
    /// sample.
    pub in_sketch: Vec<bool>,
}

/// A multi-assignment summary in the colocated-weights model.
///
/// The set of included keys is the union of one embedded bottom-k sample per
/// assignment; every included key carries its full weight vector, which is
/// what allows the *inclusive* estimators to use all of them for every
/// aggregate (Section 6).
#[derive(Debug, Clone, PartialEq)]
pub struct ColocatedSummary {
    config: SummaryConfig,
    /// The per-assignment sample size actually used (equals `config.k` for
    /// fixed-k builds; may be larger for fixed-distinct-key builds).
    effective_k: usize,
    num_assignments: usize,
    kth_ranks: Vec<f64>,
    next_ranks: Vec<f64>,
    records: Vec<ColocatedRecord>,
    index: HashMap<Key, usize>,
}

impl ColocatedSummary {
    /// Builds a summary embedding a bottom-`k` sample for every assignment
    /// (`k` taken from the configuration).
    #[must_use]
    pub fn build(data: &MultiWeighted, config: &SummaryConfig) -> Self {
        Self::build_with_k(data, config, config.k)
    }

    /// Builds a summary with a fixed budget of distinct keys (Section 4,
    /// "Fixed number of distinct keys for colocated data").
    ///
    /// The per-assignment sample size is the largest `ℓ ≥ k` such that the
    /// union of the bottom-`ℓ` samples holds at most `max_distinct` keys.
    ///
    /// # Panics
    /// Panics if `max_distinct` is smaller than the number of distinct keys
    /// of the plain bottom-`k` build (the paper guarantees feasibility for
    /// `max_distinct = |W| · k`).
    #[must_use]
    pub fn build_with_distinct_budget(
        data: &MultiWeighted,
        config: &SummaryConfig,
        max_distinct: usize,
    ) -> Self {
        let base = Self::build_with_k(data, config, config.k);
        assert!(
            base.num_distinct_keys() <= max_distinct,
            "distinct-key budget {max_distinct} is below the bottom-k union size {}",
            base.num_distinct_keys()
        );
        // The union size is non-decreasing in ℓ; binary search the largest
        // feasible ℓ. The search space is bounded by the largest per-assignment
        // support (beyond which nothing changes).
        let max_support =
            (0..data.num_assignments()).map(|b| data.assignment_support(b)).max().unwrap_or(0);
        let mut lo = config.k; // feasible
        let mut hi = max_support.max(config.k); // possibly infeasible
        if Self::build_with_k(data, config, hi).num_distinct_keys() <= max_distinct {
            return Self::build_with_k(data, config, hi);
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if Self::build_with_k(data, config, mid).num_distinct_keys() <= max_distinct {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        if lo == config.k {
            base
        } else {
            Self::build_with_k(data, config, lo)
        }
    }

    /// Assembles a summary from parts computed elsewhere (e.g. by the
    /// single-pass stream sampler of `cws-stream`).
    ///
    /// `kth_ranks[b]` / `next_ranks[b]` must be the ℓ-th / (ℓ+1)-st smallest
    /// rank of assignment `b` over the full population, and every record must
    /// carry one membership flag and one weight per assignment.
    ///
    /// # Panics
    /// Panics if the per-assignment vectors disagree in length, a record has
    /// the wrong arity, or `effective_k` is zero.
    #[must_use]
    pub fn from_parts(
        config: SummaryConfig,
        effective_k: usize,
        kth_ranks: Vec<f64>,
        next_ranks: Vec<f64>,
        mut records: Vec<ColocatedRecord>,
    ) -> Self {
        assert!(effective_k > 0, "effective sample size must be positive");
        let assignments = kth_ranks.len();
        assert_eq!(next_ranks.len(), assignments, "rank vectors must have equal length");
        assert!(assignments > 0, "at least one assignment is required");
        for record in &records {
            assert_eq!(record.weights.len(), assignments, "weight vector arity mismatch");
            assert_eq!(record.in_sketch.len(), assignments, "membership arity mismatch");
        }
        records.sort_by_key(|record| record.key);
        let index = records.iter().enumerate().map(|(slot, record)| (record.key, slot)).collect();
        Self {
            config,
            effective_k,
            num_assignments: assignments,
            kth_ranks,
            next_ranks,
            records,
            index,
        }
    }

    fn build_with_k(data: &MultiWeighted, config: &SummaryConfig, k: usize) -> Self {
        let generator = config.generator();
        let assignments = data.num_assignments();

        // Rank every key once; reuse the vectors for all assignments.
        let ranked: Vec<(Key, Vec<f64>)> =
            data.iter().map(|(key, weights)| (key, generator.rank_vector(key, weights))).collect();

        let mut kth_ranks = Vec::with_capacity(assignments);
        let mut next_ranks = Vec::with_capacity(assignments);
        let mut membership: HashMap<Key, Vec<bool>> = HashMap::new();
        for b in 0..assignments {
            let sketch = BottomKSketch::from_ranked(
                k,
                ranked.iter().map(|(key, ranks)| (*key, ranks[b], data.weight(*key, b))),
            );
            kth_ranks.push(sketch.kth_rank());
            next_ranks.push(sketch.next_rank());
            for entry in sketch.entries() {
                membership.entry(entry.key).or_insert_with(|| vec![false; assignments])[b] = true;
            }
        }

        let mut records: Vec<ColocatedRecord> = membership
            .into_iter()
            .map(|(key, in_sketch)| ColocatedRecord {
                key,
                weights: data.weight_vector(key).expect("sampled key exists in data").to_vec(),
                in_sketch,
            })
            .collect();
        records.sort_by_key(|record| record.key);
        let index = records.iter().enumerate().map(|(slot, record)| (record.key, slot)).collect();

        Self {
            config: *config,
            effective_k: k,
            num_assignments: assignments,
            kth_ranks,
            next_ranks,
            records,
            index,
        }
    }

    /// The configuration used to build the summary.
    #[must_use]
    pub fn config(&self) -> &SummaryConfig {
        &self.config
    }

    /// The per-assignment sample size actually embedded.
    #[must_use]
    pub fn effective_k(&self) -> usize {
        self.effective_k
    }

    /// The rank family.
    #[must_use]
    pub fn family(&self) -> RankFamily {
        self.config.family
    }

    /// The coordination mode.
    #[must_use]
    pub fn mode(&self) -> CoordinationMode {
        self.config.mode
    }

    /// Number of weight assignments.
    #[must_use]
    pub fn num_assignments(&self) -> usize {
        self.num_assignments
    }

    /// The retained records (union of the embedded samples), sorted by key.
    #[must_use]
    pub fn records(&self) -> &[ColocatedRecord] {
        &self.records
    }

    /// Number of distinct keys stored.
    #[must_use]
    pub fn num_distinct_keys(&self) -> usize {
        self.records.len()
    }

    /// The record of `key`, if it was retained.
    #[must_use]
    pub fn record(&self, key: Key) -> Option<&ColocatedRecord> {
        self.index.get(&key).map(|&slot| &self.records[slot])
    }

    /// Whether `key` is included in the embedded sample of `assignment`.
    #[must_use]
    pub fn in_sketch(&self, key: Key, assignment: usize) -> bool {
        self.record(key).is_some_and(|record| record.in_sketch[assignment])
    }

    /// `r_ℓ^{(b)}(I)` — the ℓ-th smallest rank of assignment `b` (ℓ being the
    /// effective sample size).
    #[must_use]
    pub fn kth_rank(&self, assignment: usize) -> f64 {
        self.kth_ranks[assignment]
    }

    /// `r_{ℓ+1}^{(b)}(I)` — the next rank of assignment `b`.
    #[must_use]
    pub fn next_rank(&self, assignment: usize) -> f64 {
        self.next_ranks[assignment]
    }

    /// The rank-conditioning threshold `r_ℓ^{(b)}(I \ {i})` for a retained
    /// record: the next rank when the record is in the sample of `b`, the
    /// ℓ-th rank otherwise.
    #[must_use]
    pub fn threshold_excluding(&self, record: &ColocatedRecord, assignment: usize) -> f64 {
        if record.in_sketch[assignment] {
            self.next_ranks[assignment]
        } else {
            self.kth_ranks[assignment]
        }
    }

    /// The sharing index `|S| / (ℓ · |W|)` (Section 9.3): 1/|W| when all
    /// embedded samples coincide, 1 when they are disjoint.
    #[must_use]
    pub fn sharing_index(&self) -> f64 {
        self.num_distinct_keys() as f64 / (self.effective_k * self.num_assignments) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordination::CoordinationMode;
    use crate::ranks::RankFamily;

    fn fixture() -> MultiWeighted {
        let mut builder = MultiWeighted::builder(3);
        for key in 0..400u64 {
            builder.add(key, 0, ((key % 11) + 1) as f64);
            builder.add(key, 1, ((key % 7) * 2) as f64);
            builder.add(key, 2, ((key % 13) + 3) as f64);
        }
        builder.build()
    }

    fn config(mode: CoordinationMode) -> SummaryConfig {
        SummaryConfig::new(25, RankFamily::Ipps, mode, 7)
    }

    #[test]
    fn build_embeds_k_samples_per_assignment() {
        let data = fixture();
        let summary = ColocatedSummary::build(&data, &config(CoordinationMode::SharedSeed));
        assert_eq!(summary.num_assignments(), 3);
        assert_eq!(summary.effective_k(), 25);
        for b in 0..3 {
            let in_b = summary.records().iter().filter(|r| r.in_sketch[b]).count();
            assert_eq!(in_b, 25, "assignment {b}");
            assert!(summary.kth_rank(b) <= summary.next_rank(b));
        }
    }

    #[test]
    fn records_store_full_weight_vectors() {
        let data = fixture();
        let summary = ColocatedSummary::build(&data, &config(CoordinationMode::SharedSeed));
        for record in summary.records() {
            assert_eq!(record.weights, data.weight_vector(record.key).unwrap());
            assert_eq!(record.in_sketch.len(), 3);
        }
        // Lookup helpers agree with the records.
        let first = &summary.records()[0];
        assert_eq!(summary.record(first.key), Some(first));
        assert_eq!(summary.in_sketch(first.key, 0), first.in_sketch[0]);
        assert!(summary.record(1_000_000).is_none());
    }

    #[test]
    fn sharing_index_is_lower_for_coordinated_summaries() {
        let data = fixture();
        let coordinated = ColocatedSummary::build(&data, &config(CoordinationMode::SharedSeed));
        let independent = ColocatedSummary::build(&data, &config(CoordinationMode::Independent));
        assert!(coordinated.sharing_index() < independent.sharing_index());
        assert!(coordinated.sharing_index() >= 1.0 / 3.0 - 1e-12);
        assert!(independent.sharing_index() <= 1.0);
    }

    #[test]
    fn threshold_excluding_picks_correct_rank() {
        let data = fixture();
        let summary = ColocatedSummary::build(&data, &config(CoordinationMode::SharedSeed));
        let inside = summary.records().iter().find(|r| r.in_sketch[1]).unwrap();
        let outside = summary.records().iter().find(|r| !r.in_sketch[1]).unwrap();
        assert_eq!(summary.threshold_excluding(inside, 1), summary.next_rank(1));
        assert_eq!(summary.threshold_excluding(outside, 1), summary.kth_rank(1));
    }

    #[test]
    fn fixed_distinct_budget_grows_the_samples() {
        let data = fixture();
        let cfg = config(CoordinationMode::SharedSeed);
        let plain = ColocatedSummary::build(&data, &cfg);
        let budget = 3 * cfg.k; // |W| * k as in the paper
        let fixed = ColocatedSummary::build_with_distinct_budget(&data, &cfg, budget);
        assert!(fixed.num_distinct_keys() <= budget);
        assert!(fixed.effective_k() >= plain.effective_k());
        // Growing ℓ can only add keys.
        assert!(fixed.num_distinct_keys() >= plain.num_distinct_keys());
    }

    #[test]
    fn fixed_distinct_budget_of_whole_population_takes_everything() {
        let data = fixture();
        let cfg = config(CoordinationMode::SharedSeed);
        let fixed = ColocatedSummary::build_with_distinct_budget(&data, &cfg, data.num_keys());
        // Every key has positive weight in assignments 0 and 2, so the union
        // saturates at the full population.
        assert_eq!(fixed.num_distinct_keys(), data.num_keys());
    }

    #[test]
    #[should_panic(expected = "distinct-key budget")]
    fn infeasible_budget_panics() {
        let data = fixture();
        let cfg = config(CoordinationMode::SharedSeed);
        let _ = ColocatedSummary::build_with_distinct_budget(&data, &cfg, cfg.k - 1);
    }

    #[test]
    fn independent_differences_is_supported_for_colocated_data() {
        let data = fixture();
        let cfg =
            SummaryConfig::new(25, RankFamily::Exp, CoordinationMode::IndependentDifferences, 7);
        let summary = ColocatedSummary::build(&data, &cfg);
        assert_eq!(summary.num_assignments(), 3);
        assert!(summary.num_distinct_keys() >= 25);
    }
}
