//! Worked examples from the paper (Figures 1 and 2), used as executable
//! documentation and regression tests for the exact numbers printed there.

use crate::aggregates::AggregateFn;
use crate::ranks::RankFamily;
use crate::weights::{Key, MultiWeighted};

/// Figure 1 / Figure 2 seeds `u(i)` for keys i1..i6.
const SEEDS: [f64; 6] = [0.22, 0.75, 0.07, 0.92, 0.55, 0.37];

/// Figure 2 (A): three weight assignments over keys i1..i6 (keys 1..=6 here).
fn figure2_data() -> MultiWeighted {
    let w1 = [15.0, 0.0, 10.0, 5.0, 10.0, 10.0];
    let w2 = [20.0, 10.0, 12.0, 20.0, 0.0, 10.0];
    let w3 = [10.0, 15.0, 15.0, 0.0, 15.0, 10.0];
    let mut builder = MultiWeighted::builder(3);
    for i in 0..6usize {
        let key = i as Key + 1;
        builder.add(key, 0, w1[i]);
        builder.add(key, 1, w2[i]);
        builder.add(key, 2, w3[i]);
    }
    builder.build()
}

#[test]
fn figure1_ipps_ranks_match_printed_values() {
    // Figure 1: weights and IPPS ranks r(i) = u(i)/w(i).
    let weights = [20.0, 10.0, 12.0, 20.0, 10.0, 10.0];
    let expected = [0.011, 0.075, 0.005_833, 0.046, 0.055, 0.037];
    for i in 0..6 {
        let rank = RankFamily::Ipps.rank_from_seed(weights[i], SEEDS[i]);
        // The figure prints 0.0583 for i3, an apparent typo for u/w =
        // 0.005833…; we verify the formula value.
        assert!((rank - expected[i]).abs() < 1e-6, "i{}: {rank}", i + 1);
    }
}

#[test]
fn figure2_shared_seed_ranks_match_printed_values() {
    // Figure 2 (B), "Consistent shared-seed IPPS ranks".
    let data = figure2_data();
    let expected: [[f64; 3]; 6] = [
        [0.0147, 0.011, 0.022],
        [f64::INFINITY, 0.075, 0.05],
        [0.007, 0.0583, 0.0047],
        [0.184, 0.046, f64::INFINITY],
        [0.055, f64::INFINITY, 0.0367],
        [0.037, 0.037, 0.037],
    ];
    for i in 0..6usize {
        let key = i as Key + 1;
        let weights = data.weight_vector(key).unwrap();
        for b in 0..3 {
            let rank = RankFamily::Ipps.rank_from_seed(weights[b], SEEDS[i]);
            if expected[i][b].is_infinite() {
                assert!(rank.is_infinite(), "key i{} assignment {b}", i + 1);
            } else {
                // The figure rounds to a few significant digits (and prints
                // 0.0583 for the 0.005833… entry of i3 under w^(2); we accept
                // a relative tolerance around the printed value except for
                // that typo, which we check against the formula).
                let printed = expected[i][b];
                let formula_ok = (rank - printed).abs() <= printed * 0.02 + 1e-4;
                let typo_ok = i == 2 && b == 1 && (rank - 0.005_833).abs() < 1e-5;
                assert!(formula_ok || typo_ok, "key i{} assignment {b}: {rank}", i + 1);
            }
        }
    }
}

#[test]
fn figure2_bottom3_samples_from_shared_seed_ranks() {
    // Figure 2 (B): the bottom-3 samples per assignment under shared-seed
    // consistent ranks are w1: {i3, i1, i6}, w2: {i1, i6, i4}, w3: {i3, i1, i5}
    // (using the formula rank for i3 under w^(2), it enters the sample and i4
    // is third; with the printed ranks the figure lists i1, i6, i4 — both are
    // valid bottom-3 outcomes of their respective printed rank values, we
    // verify the formula-derived one).
    use crate::coordination::CoordinationMode;
    use crate::summary::{DispersedSummary, SummaryConfig};

    let data = figure2_data();
    // Recreate the figure's exact seeds by checking against a direct
    // computation rather than the hash-derived seeds: build the sketches by
    // hand.
    let mut keys_per_assignment: Vec<Vec<Key>> = Vec::new();
    for b in 0..3usize {
        let mut ranked: Vec<(Key, f64)> = (0..6usize)
            .map(|i| {
                let key = i as Key + 1;
                (key, RankFamily::Ipps.rank_from_seed(data.weight(key, b), SEEDS[i]))
            })
            .filter(|(_, r)| r.is_finite())
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        keys_per_assignment.push(ranked.into_iter().take(3).map(|(k, _)| k).collect());
    }
    assert_eq!(keys_per_assignment[0], vec![3, 1, 6]);
    assert_eq!(keys_per_assignment[1], vec![3, 1, 6]); // formula rank for i3 is 0.00583
    assert_eq!(keys_per_assignment[2], vec![3, 1, 5]);

    // And the library's dispersed summary with its own hash seeds still
    // produces three bottom-3 sketches over these six keys.
    let config = SummaryConfig::new(3, RankFamily::Ipps, CoordinationMode::SharedSeed, 99);
    let summary = DispersedSummary::build(&data, &config);
    for b in 0..3 {
        assert_eq!(summary.sketch(b).len(), 3);
    }
    assert!(summary.num_distinct_keys() <= 6);
}

#[test]
fn figure2_example_aggregates() {
    let data = figure2_data();
    // Totals of the per-key aggregate rows shown in Figure 2 (A).
    let total = |f: &AggregateFn| crate::aggregates::exact_aggregate(&data, f, |_| true);
    assert_eq!(total(&AggregateFn::Max(vec![0, 1])), 82.0);
    assert_eq!(total(&AggregateFn::Max(vec![0, 1, 2])), 95.0);
    assert_eq!(total(&AggregateFn::Min(vec![0, 1])), 40.0);
    assert_eq!(total(&AggregateFn::Min(vec![0, 1, 2])), 30.0);
    assert_eq!(total(&AggregateFn::L1(vec![0, 1])), 42.0);
    assert_eq!(total(&AggregateFn::L1(vec![1, 2])), 53.0);
}
