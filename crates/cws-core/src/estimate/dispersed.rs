//! Estimators over dispersed summaries (Section 7): s-set and l-set
//! estimators for top-ℓ-dependent aggregates.
//!
//! In the dispersed model a key sampled for assignment `b` carries only its
//! weight under `b`, so an estimator can use a key only when the summary
//! reveals enough of its weight vector. The paper's two selection rules are:
//!
//! * **s-set** — use the key when its rank is below the *smallest*
//!   conditioning threshold over the relevant assignments
//!   `r_k^{(min R)}(I \ {i})`; a simple closed form that works for any
//!   consistent rank distribution.
//! * **l-set** — the most inclusive selection for which the top-ℓ weights are
//!   identifiable; it dominates the s-set estimator (Lemma 5.1) and has a
//!   closed form for shared-seed coordinated sketches (and for independent
//!   sketches in the min-dependence case).
//!
//! Supported aggregates: `max` (= s-set = l-set with ℓ = 1, Eq. 11), `min`
//! (s-set Eq. 12, l-set Eq. 15/16), the ℓ-th largest weight, and the L1
//! difference `a^(L1) = a^(max) − a^(min)` (Eq. 17), which is non-negative
//! for consistent ranks (Lemma 7.5). For independent sketches only the `min`
//! estimators exist (there is no nonnegative unbiased `max`/`L1` estimator
//! without known seeds).

use crate::error::{CwsError, Result};
use crate::estimate::adjusted::AdjustedWeights;
use crate::estimate::single::rc_adjusted_weights;
use crate::estimate::template::{estimate_from_selection, Selected};
use crate::summary::DispersedSummary;
use crate::weights::Key;

/// Which of the two selection rules to use for `min` / ℓ-th-largest
/// estimators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionKind {
    /// The simpler, more restrictive selection (Section 7.1).
    SSet,
    /// The most inclusive selection (Section 7.2); tighter, requires known
    /// seeds except in the min-dependence case.
    LSet,
}

/// Estimator over a [`DispersedSummary`].
#[derive(Debug, Clone, Copy)]
pub struct DispersedEstimator<'a> {
    summary: &'a DispersedSummary,
}

impl<'a> DispersedEstimator<'a> {
    /// Creates an estimator over `summary`.
    #[must_use]
    pub fn new(summary: &'a DispersedSummary) -> Self {
        Self { summary }
    }

    fn coordinated(&self) -> bool {
        self.summary.mode().is_coordinated()
    }

    fn validate_assignments(&self, assignments: &[usize]) -> Result<()> {
        if assignments.is_empty() {
            return Err(CwsError::EmptyAssignmentSet);
        }
        let available = self.summary.num_assignments();
        if let Some(&bad) = assignments.iter().find(|&&b| b >= available) {
            return Err(CwsError::AssignmentOutOfRange { index: bad, available });
        }
        let mut sorted = assignments.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != assignments.len() {
            return Err(CwsError::InvalidParameter {
                name: "assignments",
                message: "relevant assignments must be distinct".to_string(),
            });
        }
        Ok(())
    }

    fn union_keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self.summary.union_keys().collect();
        keys.sort_unstable();
        keys
    }

    /// `r_k^{(min R)}(I \ {key})` — the smallest conditioning threshold over
    /// the relevant assignments.
    fn min_threshold(&self, key: Key, assignments: &[usize]) -> f64 {
        assignments
            .iter()
            .map(|&b| self.summary.threshold_excluding(key, b))
            .fold(f64::INFINITY, f64::min)
    }

    /// The single-assignment RC estimator applied to the embedded sketch of
    /// `assignment` — the baseline `t^(b)` used throughout the evaluation.
    ///
    /// # Errors
    /// Returns an error if `assignment` is out of range.
    pub fn single(&self, assignment: usize) -> Result<AdjustedWeights> {
        self.validate_assignments(&[assignment])?;
        Ok(rc_adjusted_weights(self.summary.sketch(assignment), self.summary.family()))
    }

    /// The `max_R` estimator (Eq. 11): s-set (equivalently l-set) with ℓ = 1.
    ///
    /// # Errors
    /// Returns an error for independent sketches (no nonnegative unbiased
    /// estimator exists without known seeds) or invalid assignment sets.
    pub fn max(&self, assignments: &[usize]) -> Result<AdjustedWeights> {
        self.validate_assignments(assignments)?;
        if !self.coordinated() {
            return Err(CwsError::UnsupportedEstimator {
                estimator: "max",
                reason: "requires coordinated (consistent) sketches",
            });
        }
        self.lth_largest(assignments, 1, SelectionKind::SSet)
    }

    /// The `min_R` estimator.
    ///
    /// For coordinated sketches both selections are available; for
    /// independent sketches the estimator uses the product-form inclusion
    /// probability (Eq. 16 for the l-set, and its analogue for the s-set).
    ///
    /// # Errors
    /// Returns an error for invalid assignment sets.
    pub fn min(&self, assignments: &[usize], kind: SelectionKind) -> Result<AdjustedWeights> {
        self.validate_assignments(assignments)?;
        let summary = self.summary;
        let family = summary.family();
        let coordinated = self.coordinated();
        Ok(estimate_from_selection(self.union_keys(), |key| {
            // Selection: the key must be in the sketch of every relevant
            // assignment; the s-set additionally requires every rank to fall
            // below the smallest threshold.
            let mut weights = Vec::with_capacity(assignments.len());
            let mut ranks = Vec::with_capacity(assignments.len());
            for &b in assignments {
                let (rank, weight) = summary.entry(key, b)?;
                weights.push(weight);
                ranks.push(rank);
            }
            let value = weights.iter().copied().fold(f64::INFINITY, f64::min);
            if value == 0.0 {
                return None;
            }
            let probability = match kind {
                SelectionKind::SSet => {
                    let threshold = self.min_threshold(key, assignments);
                    if ranks.iter().any(|&rank| rank >= threshold) {
                        return None;
                    }
                    if coordinated {
                        family.inclusion_probability(value, threshold)
                    } else {
                        weights
                            .iter()
                            .map(|&w| family.inclusion_probability(w, threshold))
                            .product()
                    }
                }
                SelectionKind::LSet => {
                    let per_assignment = assignments.iter().zip(&weights).map(|(&b, &w)| {
                        family.inclusion_probability(w, summary.threshold_excluding(key, b))
                    });
                    if coordinated {
                        per_assignment.fold(f64::INFINITY, f64::min)
                    } else {
                        per_assignment.product()
                    }
                }
            };
            Some(Selected { value, probability })
        }))
    }

    /// The ℓ-th-largest-weight estimator over coordinated sketches
    /// (Section 7.1 for the s-set, Section 7.2 for the l-set).
    ///
    /// `ell = 1` is the maximum, `ell = |R|` the minimum.
    ///
    /// # Errors
    /// Returns an error for independent sketches (the top-ℓ weights are not
    /// identifiable without consistency), invalid `ell`, or invalid
    /// assignment sets.
    pub fn lth_largest(
        &self,
        assignments: &[usize],
        ell: usize,
        kind: SelectionKind,
    ) -> Result<AdjustedWeights> {
        self.validate_assignments(assignments)?;
        if ell < 1 || ell > assignments.len() {
            return Err(CwsError::InvalidDependenceOrder { ell, relevant: assignments.len() });
        }
        if !self.coordinated() {
            return Err(CwsError::UnsupportedEstimator {
                estimator: "lth_largest",
                reason: "requires coordinated (consistent) sketches",
            });
        }
        let summary = self.summary;
        let family = summary.family();
        match kind {
            SelectionKind::SSet => Ok(estimate_from_selection(self.union_keys(), |key| {
                let threshold = self.min_threshold(key, assignments);
                // R'(i): assignments whose rank for the key is below the
                // smallest threshold (only sampled assignments can qualify).
                let mut observed: Vec<f64> = assignments
                    .iter()
                    .filter_map(|&b| summary.entry(key, b))
                    .filter(|&(rank, _)| rank < threshold)
                    .map(|(_, weight)| weight)
                    .collect();
                if observed.len() < ell {
                    return None;
                }
                observed.sort_by(|a, b| b.total_cmp(a));
                let value = observed[ell - 1];
                if value == 0.0 {
                    return None;
                }
                Some(Selected {
                    value,
                    probability: family.inclusion_probability(value, threshold),
                })
            })),
            SelectionKind::LSet => Ok(estimate_from_selection(self.union_keys(), |key| {
                // R'(i): assignments whose sketch contains the key.
                let mut observed: Vec<(usize, f64, f64)> = assignments
                    .iter()
                    .filter_map(|&b| summary.entry(key, b).map(|(rank, weight)| (b, rank, weight)))
                    .collect();
                if observed.len() < ell {
                    return None;
                }
                observed.sort_by(|a, b| b.2.total_cmp(&a.2));
                let value = observed[ell - 1].2;
                if value == 0.0 {
                    return None;
                }
                // Recover the shared seed from any observed (rank, weight).
                let (_, rank0, weight0) = observed[0];
                let seed = family.seed_from_rank(weight0, rank0);
                let top: Vec<usize> = observed[..ell].iter().map(|&(b, _, _)| b).collect();
                // The remaining assignments must be certifiably no larger
                // than the ℓ-th largest weight: the shared seed must fall
                // below F_{value}(threshold_b).
                let mut probability = f64::INFINITY;
                for &(b, _, weight) in &observed[..ell] {
                    probability = probability.min(
                        family.inclusion_probability(weight, summary.threshold_excluding(key, b)),
                    );
                }
                for &b in assignments.iter().filter(|&&b| !top.contains(&b)) {
                    let bound =
                        family.inclusion_probability(value, summary.threshold_excluding(key, b));
                    if seed >= bound {
                        return None;
                    }
                    probability = probability.min(bound);
                }
                Some(Selected { value, probability })
            })),
        }
    }

    /// The L1 (range) estimator `a^(L1) = a^(max) − a^(min)` (Eq. 17), using
    /// the requested selection for the `min` part.
    ///
    /// # Errors
    /// Returns an error for independent sketches or invalid assignment sets.
    pub fn l1(&self, assignments: &[usize], kind: SelectionKind) -> Result<AdjustedWeights> {
        let max = self.max(assignments)?;
        let min = self.min(assignments, kind)?;
        Ok(AdjustedWeights::difference(&max, &min))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::{exact_aggregate, AggregateFn};
    use crate::coordination::CoordinationMode;
    use crate::ranks::RankFamily;
    use crate::summary::SummaryConfig;
    use crate::weights::MultiWeighted;

    /// Two-period, skewed data with churn, mimicking the structure of the
    /// paper's dispersed IP data.
    fn fixture(num_keys: u64, assignments: usize) -> MultiWeighted {
        let mut builder = MultiWeighted::builder(assignments);
        for key in 0..num_keys {
            for b in 0..assignments {
                // Churn: a key is absent from an assignment with some
                // probability; persistent keys keep correlated weights.
                let absent = (key + 3 * b as u64) % 6 == 0;
                let weight = if absent {
                    0.0
                } else {
                    let base = ((key % 19) + 1) as f64 * if key % 29 == 0 { 20.0 } else { 1.0 };
                    base * (1.0 + 0.2 * b as f64) + ((key + b as u64) % 4) as f64
                };
                builder.add(key, b, weight);
            }
        }
        builder.build()
    }

    fn config(mode: CoordinationMode, k: usize) -> SummaryConfig {
        SummaryConfig::new(k, RankFamily::Ipps, mode, 1)
    }

    fn mean_and_mse<F>(
        data: &MultiWeighted,
        cfg: &SummaryConfig,
        runs: u64,
        exact: f64,
        f: F,
    ) -> (f64, f64)
    where
        F: Fn(&DispersedSummary) -> f64,
    {
        let mut total = 0.0;
        let mut squared = 0.0;
        for run in 0..runs {
            let summary = DispersedSummary::build(data, &cfg.with_seed(run * 6151 + 11));
            let estimate = f(&summary);
            total += estimate;
            squared += (estimate - exact).powi(2);
        }
        (total / runs as f64, squared / runs as f64)
    }

    #[test]
    fn max_min_l1_are_unbiased_for_coordinated_sketches() {
        let data = fixture(250, 3);
        let r = vec![0usize, 1, 2];
        let cfg = config(CoordinationMode::SharedSeed, 30);
        type EstimateFn = Box<dyn Fn(&DispersedSummary) -> f64>;
        let cases: Vec<(AggregateFn, EstimateFn)> = vec![
            (
                AggregateFn::Max(r.clone()),
                Box::new(|s: &DispersedSummary| {
                    DispersedEstimator::new(s).max(&[0, 1, 2]).unwrap().total()
                }),
            ),
            (
                AggregateFn::Min(r.clone()),
                Box::new(|s: &DispersedSummary| {
                    DispersedEstimator::new(s).min(&[0, 1, 2], SelectionKind::SSet).unwrap().total()
                }),
            ),
            (
                AggregateFn::Min(r.clone()),
                Box::new(|s: &DispersedSummary| {
                    DispersedEstimator::new(s).min(&[0, 1, 2], SelectionKind::LSet).unwrap().total()
                }),
            ),
            (
                AggregateFn::L1(r.clone()),
                Box::new(|s: &DispersedSummary| {
                    DispersedEstimator::new(s).l1(&[0, 1, 2], SelectionKind::LSet).unwrap().total()
                }),
            ),
            (
                AggregateFn::LthLargest { assignments: r.clone(), ell: 2 },
                Box::new(|s: &DispersedSummary| {
                    DispersedEstimator::new(s)
                        .lth_largest(&[0, 1, 2], 2, SelectionKind::LSet)
                        .unwrap()
                        .total()
                }),
            ),
        ];
        for (aggregate, estimate) in cases {
            let exact = exact_aggregate(&data, &aggregate, |_| true);
            let (mean, _) = mean_and_mse(&data, &cfg, 400, exact, |s| estimate(s));
            assert!(
                (mean - exact).abs() <= exact * 0.1,
                "{}: mean {mean} vs exact {exact}",
                aggregate.label()
            );
        }
    }

    #[test]
    fn min_is_unbiased_for_independent_sketches() {
        let data = fixture(250, 2);
        let cfg = config(CoordinationMode::Independent, 40);
        let exact = exact_aggregate(&data, &AggregateFn::Min(vec![0, 1]), |_| true);
        let (mean, _) = mean_and_mse(&data, &cfg, 500, exact, |s| {
            DispersedEstimator::new(s).min(&[0, 1], SelectionKind::LSet).unwrap().total()
        });
        assert!((mean - exact).abs() <= exact * 0.2, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn coordinated_min_has_much_lower_mse_than_independent_min() {
        // The headline result (Figure 3): coordination reduces the variance of
        // the min estimator by orders of magnitude.
        let data = fixture(300, 3);
        let exact = exact_aggregate(&data, &AggregateFn::Min(vec![0, 1, 2]), |_| true);
        let runs = 200;
        let (_, mse_coord) =
            mean_and_mse(&data, &config(CoordinationMode::SharedSeed, 30), runs, exact, |s| {
                DispersedEstimator::new(s).min(&[0, 1, 2], SelectionKind::LSet).unwrap().total()
            });
        let (_, mse_ind) =
            mean_and_mse(&data, &config(CoordinationMode::Independent, 30), runs, exact, |s| {
                DispersedEstimator::new(s).min(&[0, 1, 2], SelectionKind::LSet).unwrap().total()
            });
        assert!(
            mse_ind > mse_coord * 4.0,
            "independent MSE {mse_ind} should dwarf coordinated MSE {mse_coord}"
        );
    }

    #[test]
    fn l_set_dominates_s_set() {
        // Lemma 5.1: the more inclusive l-set selection has at most the
        // variance of the s-set selection.
        let data = fixture(300, 4);
        let exact = exact_aggregate(&data, &AggregateFn::Min(vec![0, 1, 2, 3]), |_| true);
        let cfg = config(CoordinationMode::SharedSeed, 25);
        let runs = 300;
        let (_, mse_s) = mean_and_mse(&data, &cfg, runs, exact, |s| {
            DispersedEstimator::new(s).min(&[0, 1, 2, 3], SelectionKind::SSet).unwrap().total()
        });
        let (_, mse_l) = mean_and_mse(&data, &cfg, runs, exact, |s| {
            DispersedEstimator::new(s).min(&[0, 1, 2, 3], SelectionKind::LSet).unwrap().total()
        });
        assert!(mse_l <= mse_s * 1.05, "l-set MSE {mse_l} should not exceed s-set MSE {mse_s}");
    }

    #[test]
    fn l1_is_non_negative_per_key() {
        let data = fixture(300, 2);
        for family in [RankFamily::Ipps, RankFamily::Exp] {
            let cfg = SummaryConfig::new(25, family, CoordinationMode::SharedSeed, 3);
            let summary = DispersedSummary::build(&data, &cfg);
            let estimator = DispersedEstimator::new(&summary);
            for kind in [SelectionKind::SSet, SelectionKind::LSet] {
                let max = estimator.max(&[0, 1]).unwrap();
                let min = estimator.min(&[0, 1], kind).unwrap();
                for key in summary.union_keys() {
                    assert!(
                        max.get(key) >= min.get(key) - 1e-9,
                        "{family:?} {kind:?}: a_max {} < a_min {} for key {key}",
                        max.get(key),
                        min.get(key)
                    );
                }
                let l1 = estimator.l1(&[0, 1], kind).unwrap();
                assert!(l1.iter().all(|(_, value)| value >= 0.0));
            }
        }
    }

    #[test]
    fn ell_one_equals_max_and_ell_r_equals_min() {
        let data = fixture(200, 3);
        let cfg = config(CoordinationMode::SharedSeed, 20);
        let summary = DispersedSummary::build(&data, &cfg);
        let estimator = DispersedEstimator::new(&summary);
        let r = [0usize, 1, 2];

        let max = estimator.max(&r).unwrap();
        let top1 = estimator.lth_largest(&r, 1, SelectionKind::SSet).unwrap();
        for key in summary.union_keys() {
            assert!((max.get(key) - top1.get(key)).abs() < 1e-9);
        }

        let min_s = estimator.min(&r, SelectionKind::SSet).unwrap();
        let bottom_s = estimator.lth_largest(&r, 3, SelectionKind::SSet).unwrap();
        for key in summary.union_keys() {
            assert!((min_s.get(key) - bottom_s.get(key)).abs() < 1e-9);
        }

        let min_l = estimator.min(&r, SelectionKind::LSet).unwrap();
        let bottom_l = estimator.lth_largest(&r, 3, SelectionKind::LSet).unwrap();
        for key in summary.union_keys() {
            assert!((min_l.get(key) - bottom_l.get(key)).abs() < 1e-9);
        }
    }

    #[test]
    fn single_matches_plain_rc() {
        let data = fixture(200, 2);
        let cfg = config(CoordinationMode::SharedSeed, 20);
        let summary = DispersedSummary::build(&data, &cfg);
        let estimator = DispersedEstimator::new(&summary);
        let direct = rc_adjusted_weights(summary.sketch(1), summary.family());
        assert_eq!(estimator.single(1).unwrap(), direct);
    }

    #[test]
    fn unsupported_and_invalid_inputs() {
        let data = fixture(100, 2);
        let coordinated = DispersedSummary::build(&data, &config(CoordinationMode::SharedSeed, 10));
        let independent =
            DispersedSummary::build(&data, &config(CoordinationMode::Independent, 10));

        let est = DispersedEstimator::new(&independent);
        assert!(matches!(est.max(&[0, 1]), Err(CwsError::UnsupportedEstimator { .. })));
        assert!(matches!(
            est.l1(&[0, 1], SelectionKind::LSet),
            Err(CwsError::UnsupportedEstimator { .. })
        ));
        assert!(matches!(
            est.lth_largest(&[0, 1], 1, SelectionKind::SSet),
            Err(CwsError::UnsupportedEstimator { .. })
        ));
        assert!(est.min(&[0, 1], SelectionKind::LSet).is_ok());

        let est = DispersedEstimator::new(&coordinated);
        assert!(matches!(est.max(&[]), Err(CwsError::EmptyAssignmentSet)));
        assert!(matches!(est.max(&[0, 5]), Err(CwsError::AssignmentOutOfRange { .. })));
        assert!(matches!(est.max(&[0, 0]), Err(CwsError::InvalidParameter { .. })));
        assert!(matches!(
            est.lth_largest(&[0, 1], 0, SelectionKind::SSet),
            Err(CwsError::InvalidDependenceOrder { .. })
        ));
        assert!(matches!(
            est.lth_largest(&[0, 1], 3, SelectionKind::SSet),
            Err(CwsError::InvalidDependenceOrder { .. })
        ));
    }

    #[test]
    fn subpopulation_estimates_track_truth() {
        let data = fixture(300, 2);
        let cfg = config(CoordinationMode::SharedSeed, 60);
        let predicate = |key: Key| key % 3 == 0;
        let exact = exact_aggregate(&data, &AggregateFn::L1(vec![0, 1]), predicate);
        let (mean, _) = mean_and_mse(&data, &cfg, 400, exact, |s| {
            DispersedEstimator::new(s)
                .l1(&[0, 1], SelectionKind::LSet)
                .unwrap()
                .subset_total(predicate)
        });
        assert!((mean - exact).abs() <= exact * 0.15, "mean {mean} vs exact {exact}");
    }
}
