//! Estimators over colocated summaries (Section 6).
//!
//! * [`InclusiveEstimator`] — the paper's inclusive estimator: the selection
//!   contains every outcome in which the key appears in the union of the
//!   embedded samples, the most inclusive selection possible, so by
//!   Lemma 5.1 it dominates any estimator that uses only a single embedded
//!   sample. Because colocated records carry the full weight vector, the same
//!   machinery serves single-assignment sums and any multiple-assignment
//!   aggregate (max, min, L1, ℓ-th largest, or a custom function of the
//!   weight vector).
//! * [`PlainEstimator`] — the baseline: the classic RC estimator applied to
//!   the embedded sample of one assignment, ignoring keys sampled only for
//!   other assignments.

use crate::aggregates::AggregateFn;
use crate::coordination::CoordinationMode;
use crate::error::{CwsError, Result};
use crate::estimate::adjusted::AdjustedWeights;
use crate::estimate::template::{estimate_from_selection, Selected};
use crate::summary::{ColocatedRecord, ColocatedSummary};

/// The inclusive estimator over a colocated summary.
#[derive(Debug, Clone, Copy)]
pub struct InclusiveEstimator<'a> {
    summary: &'a ColocatedSummary,
}

impl<'a> InclusiveEstimator<'a> {
    /// Creates an estimator over `summary`.
    #[must_use]
    pub fn new(summary: &'a ColocatedSummary) -> Self {
        Self { summary }
    }

    /// The conditional probability, given the ranks of all other keys, that
    /// this record appears in the union of the embedded samples (Eq. 4,
    /// instantiated per coordination mode: Eq. 5 for independent ranks, Eq. 6
    /// for shared-seed ranks, and the `A_ℓ` recursion for
    /// independent-differences ranks).
    #[must_use]
    pub fn inclusion_probability(&self, record: &ColocatedRecord) -> f64 {
        let summary = self.summary;
        let family = summary.family();
        let assignments = summary.num_assignments();
        match summary.mode() {
            CoordinationMode::Independent => {
                let mut complement = 1.0;
                for b in 0..assignments {
                    let threshold = summary.threshold_excluding(record, b);
                    complement *= 1.0 - family.inclusion_probability(record.weights[b], threshold);
                }
                1.0 - complement
            }
            CoordinationMode::SharedSeed => {
                let mut best = 0.0f64;
                for b in 0..assignments {
                    let threshold = summary.threshold_excluding(record, b);
                    best = best.max(family.inclusion_probability(record.weights[b], threshold));
                }
                best
            }
            CoordinationMode::IndependentDifferences => {
                // Sort the positive entries of the weight vector in increasing
                // order; level j draws d_j ~ EXP[w_(j) - w_(j-1)] and the key
                // is included somewhere iff some d_j falls below
                // M_j = max_{a >= j} threshold(b_a).
                let mut order: Vec<usize> =
                    (0..assignments).filter(|&b| record.weights[b] > 0.0).collect();
                order.sort_by(|&a, &b| record.weights[a].total_cmp(&record.weights[b]));
                if order.is_empty() {
                    return 0.0;
                }
                let suffix_max: Vec<f64> = {
                    let thresholds: Vec<f64> =
                        order.iter().map(|&b| summary.threshold_excluding(record, b)).collect();
                    let mut suffix = thresholds.clone();
                    for j in (0..suffix.len().saturating_sub(1)).rev() {
                        suffix[j] = suffix[j].max(suffix[j + 1]);
                    }
                    suffix
                };
                let mut probability = 0.0;
                let mut none_so_far = 1.0;
                let mut previous_weight = 0.0;
                for (level, &b) in order.iter().enumerate() {
                    let increment = record.weights[b] - previous_weight;
                    previous_weight = record.weights[b];
                    let hit = family.inclusion_probability(increment, suffix_max[level]);
                    probability += none_so_far * hit;
                    none_so_far *= 1.0 - hit;
                }
                probability
            }
        }
    }

    /// Adjusted weights for an arbitrary per-key function `f` of the weight
    /// vector. `f` must be non-negative and may only be positive for keys
    /// with a positive maximum weight (requirement (3) of Section 6) — which
    /// holds for every aggregate built from the weights themselves.
    #[must_use]
    pub fn adjusted_weights_with<F>(&self, f: F) -> AdjustedWeights
    where
        F: Fn(&[f64]) -> f64,
    {
        let summary = self.summary;
        let mut records = summary.records().iter();
        estimate_from_selection(summary.records().iter().map(|r| r.key), |_key| {
            let record = records.next().expect("records and keys iterate in lockstep");
            let value = f(&record.weights);
            if value == 0.0 {
                return None;
            }
            Some(Selected { value, probability: self.inclusion_probability(record) })
        })
    }

    /// Inclusion probabilities for every record, aligned with
    /// `summary.records()`.
    ///
    /// The inclusion probability of a record is a property of the summary
    /// outcome alone — it does not depend on the aggregate being estimated —
    /// so one probability pass can be shared across any number of aggregates
    /// via [`InclusiveEstimator::aggregate_with`]. The values are
    /// bit-identical to what [`InclusiveEstimator::aggregate`] computes
    /// internally.
    #[must_use]
    pub fn inclusion_probabilities(&self) -> Vec<f64> {
        self.summary.records().iter().map(|record| self.inclusion_probability(record)).collect()
    }

    /// Like [`InclusiveEstimator::adjusted_weights_with`], but reusing the
    /// precomputed `probabilities` from
    /// [`InclusiveEstimator::inclusion_probabilities`] instead of
    /// recomputing them. `inclusion_probability` is deterministic, so the
    /// result is bit-identical to the recomputing path.
    ///
    /// # Panics
    /// Panics when `probabilities` is not aligned with the summary records.
    #[must_use]
    pub fn adjusted_weights_with_probs<F>(&self, f: F, probabilities: &[f64]) -> AdjustedWeights
    where
        F: Fn(&[f64]) -> f64,
    {
        let records = self.summary.records();
        assert_eq!(
            records.len(),
            probabilities.len(),
            "probabilities must be aligned with the summary records"
        );
        AdjustedWeights::from_selected(records.iter().zip(probabilities).filter_map(
            |(record, &probability)| {
                let value = f(&record.weights);
                (value != 0.0).then_some((record.key, Selected { value, probability }))
            },
        ))
    }

    fn validate(&self, f: &AggregateFn) -> Result<()> {
        let relevant = f.relevant_assignments();
        if relevant.is_empty() {
            return Err(CwsError::EmptyAssignmentSet);
        }
        let available = self.summary.num_assignments();
        if let Some(&bad) = relevant.iter().find(|&&b| b >= available) {
            return Err(CwsError::AssignmentOutOfRange { index: bad, available });
        }
        if let AggregateFn::LthLargest { assignments, ell } = f {
            if *ell < 1 || *ell > assignments.len() {
                return Err(CwsError::InvalidDependenceOrder {
                    ell: *ell,
                    relevant: assignments.len(),
                });
            }
        }
        Ok(())
    }

    /// Adjusted weights for one of the standard aggregates.
    ///
    /// # Errors
    /// Returns an error if the aggregate references an assignment outside the
    /// summary or has an empty relevant set.
    pub fn aggregate(&self, f: &AggregateFn) -> Result<AdjustedWeights> {
        self.validate(f)?;
        Ok(self.adjusted_weights_with(|weights| f.evaluate(weights)))
    }

    /// [`InclusiveEstimator::aggregate`] with a shared probability pass: the
    /// validation is identical, and the adjusted weights are bit-identical
    /// when `probabilities` comes from
    /// [`InclusiveEstimator::inclusion_probabilities`].
    ///
    /// # Errors
    /// Returns an error if the aggregate references an assignment outside the
    /// summary or has an empty relevant set.
    ///
    /// # Panics
    /// Panics when `probabilities` is not aligned with the summary records.
    pub fn aggregate_with(
        &self,
        f: &AggregateFn,
        probabilities: &[f64],
    ) -> Result<AdjustedWeights> {
        self.validate(f)?;
        Ok(self.adjusted_weights_with_probs(|weights| f.evaluate(weights), probabilities))
    }

    /// Adjusted weights for the single-assignment sum `Σ w^(b)(i)`.
    ///
    /// # Errors
    /// Returns an error if `assignment` is out of range.
    pub fn single(&self, assignment: usize) -> Result<AdjustedWeights> {
        self.aggregate(&AggregateFn::SingleAssignment(assignment))
    }

    /// Adjusted weights for `max_{b ∈ R} w^(b)(i)`.
    ///
    /// # Errors
    /// Returns an error if `assignments` is empty or out of range.
    pub fn max(&self, assignments: &[usize]) -> Result<AdjustedWeights> {
        self.aggregate(&AggregateFn::Max(assignments.to_vec()))
    }

    /// Adjusted weights for `min_{b ∈ R} w^(b)(i)`.
    ///
    /// # Errors
    /// Returns an error if `assignments` is empty or out of range.
    pub fn min(&self, assignments: &[usize]) -> Result<AdjustedWeights> {
        self.aggregate(&AggregateFn::Min(assignments.to_vec()))
    }

    /// Adjusted weights for the range `max_R − min_R` (the L1 difference when
    /// `|R| = 2`). All inclusive estimators share the same inclusion
    /// probability, so the L1 adjusted weight of a key is directly
    /// `(max − min)/p ≥ 0`.
    ///
    /// # Errors
    /// Returns an error if `assignments` is empty or out of range.
    pub fn l1(&self, assignments: &[usize]) -> Result<AdjustedWeights> {
        self.aggregate(&AggregateFn::L1(assignments.to_vec()))
    }
}

/// The plain (single-sketch) RC estimator over a colocated summary: uses only
/// the keys embedded in the sample of the requested assignment.
#[derive(Debug, Clone, Copy)]
pub struct PlainEstimator<'a> {
    summary: &'a ColocatedSummary,
}

impl<'a> PlainEstimator<'a> {
    /// Creates an estimator over `summary`.
    #[must_use]
    pub fn new(summary: &'a ColocatedSummary) -> Self {
        Self { summary }
    }

    /// Adjusted weights for the single-assignment sum `Σ w^(b)(i)`, using only
    /// the embedded bottom-k sample of `b` (the classic RC / priority-sampling
    /// estimator).
    ///
    /// # Errors
    /// Returns an error if `assignment` is out of range.
    pub fn single(&self, assignment: usize) -> Result<AdjustedWeights> {
        let summary = self.summary;
        if assignment >= summary.num_assignments() {
            return Err(CwsError::AssignmentOutOfRange {
                index: assignment,
                available: summary.num_assignments(),
            });
        }
        let family = summary.family();
        let threshold = summary.next_rank(assignment);
        Ok(AdjustedWeights::from_entries(
            summary
                .records()
                .iter()
                .filter(|record| record.in_sketch[assignment] && record.weights[assignment] > 0.0)
                .map(|record| {
                    let weight = record.weights[assignment];
                    (record.key, weight / family.inclusion_probability(weight, threshold))
                }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::exact_aggregate;
    use crate::ranks::RankFamily;
    use crate::summary::SummaryConfig;
    use crate::weights::{Key, MultiWeighted};

    /// Skewed, partially correlated 3-assignment data set.
    fn fixture(num_keys: u64) -> MultiWeighted {
        let mut builder = MultiWeighted::builder(3);
        for key in 0..num_keys {
            let base = ((key % 19) + 1) as f64 * if key % 23 == 0 { 25.0 } else { 1.0 };
            builder.add(key, 0, base);
            builder.add(key, 1, if key % 5 == 0 { 0.0 } else { base * 1.4 + (key % 3) as f64 });
            builder.add(key, 2, ((key % 7) * 3) as f64);
        }
        builder.build()
    }

    fn mean_estimate<F>(data: &MultiWeighted, config: &SummaryConfig, runs: u64, f: F) -> f64
    where
        F: Fn(&ColocatedSummary) -> f64,
    {
        let mut total = 0.0;
        for run in 0..runs {
            let summary = ColocatedSummary::build(data, &config.with_seed(run * 7919 + 13));
            total += f(&summary);
        }
        total / runs as f64
    }

    fn modes() -> [(RankFamily, CoordinationMode); 4] {
        [
            (RankFamily::Ipps, CoordinationMode::SharedSeed),
            (RankFamily::Ipps, CoordinationMode::Independent),
            (RankFamily::Exp, CoordinationMode::SharedSeed),
            (RankFamily::Exp, CoordinationMode::IndependentDifferences),
        ]
    }

    #[test]
    fn inclusive_single_assignment_is_unbiased() {
        let data = fixture(250);
        let predicate = |key: Key| key % 4 == 1;
        for (family, mode) in modes() {
            let config = SummaryConfig::new(30, family, mode, 1);
            for b in 0..3 {
                let exact = exact_aggregate(&data, &AggregateFn::SingleAssignment(b), predicate);
                let mean = mean_estimate(&data, &config, 400, |summary| {
                    InclusiveEstimator::new(summary).single(b).unwrap().subset_total(predicate)
                });
                assert!(
                    (mean - exact).abs() <= exact.max(1.0) * 0.08,
                    "{family:?}/{mode:?} b={b}: mean {mean} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn inclusive_multi_assignment_aggregates_are_unbiased() {
        let data = fixture(250);
        let r = vec![0usize, 1, 2];
        for (family, mode) in modes() {
            let config = SummaryConfig::new(30, family, mode, 2);
            for aggregate in [
                AggregateFn::Max(r.clone()),
                AggregateFn::Min(r.clone()),
                AggregateFn::L1(r.clone()),
                AggregateFn::LthLargest { assignments: r.clone(), ell: 2 },
            ] {
                let exact = exact_aggregate(&data, &aggregate, |_| true);
                let mean = mean_estimate(&data, &config, 400, |summary| {
                    InclusiveEstimator::new(summary).aggregate(&aggregate).unwrap().total()
                });
                assert!(
                    (mean - exact).abs() <= exact.max(1.0) * 0.08,
                    "{family:?}/{mode:?} {}: mean {mean} vs exact {exact}",
                    aggregate.label()
                );
            }
        }
    }

    #[test]
    fn plain_estimator_is_unbiased() {
        let data = fixture(250);
        let config = SummaryConfig::new(30, RankFamily::Ipps, CoordinationMode::SharedSeed, 3);
        let exact = exact_aggregate(&data, &AggregateFn::SingleAssignment(0), |_| true);
        let mean = mean_estimate(&data, &config, 400, |summary| {
            PlainEstimator::new(summary).single(0).unwrap().total()
        });
        assert!((mean - exact).abs() <= exact * 0.08, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn inclusive_beats_plain_on_mean_squared_error() {
        // Lemma 8.2: the inclusive estimator's per-key variance is at most the
        // plain estimator's. Check the aggregate mean squared error.
        let data = fixture(300);
        let config = SummaryConfig::new(40, RankFamily::Ipps, CoordinationMode::SharedSeed, 5);
        let exact = exact_aggregate(&data, &AggregateFn::SingleAssignment(2), |_| true);
        let runs = 300u64;
        let (mut inclusive_sq, mut plain_sq) = (0.0, 0.0);
        for run in 0..runs {
            let summary = ColocatedSummary::build(&data, &config.with_seed(run * 31 + 7));
            let inclusive = InclusiveEstimator::new(&summary).single(2).unwrap().total();
            let plain = PlainEstimator::new(&summary).single(2).unwrap().total();
            inclusive_sq += (inclusive - exact).powi(2);
            plain_sq += (plain - exact).powi(2);
        }
        assert!(
            inclusive_sq < plain_sq,
            "inclusive MSE {inclusive_sq} should be below plain MSE {plain_sq}"
        );
    }

    #[test]
    fn l1_adjusted_weights_are_non_negative_and_consistent() {
        let data = fixture(200);
        for (family, mode) in modes() {
            let config = SummaryConfig::new(25, family, mode, 11);
            let summary = ColocatedSummary::build(&data, &config);
            let estimator = InclusiveEstimator::new(&summary);
            let max = estimator.max(&[0, 1]).unwrap();
            let min = estimator.min(&[0, 1]).unwrap();
            let l1 = estimator.l1(&[0, 1]).unwrap();
            for record in summary.records() {
                let key = record.key;
                assert!(l1.get(key) >= 0.0);
                assert!(
                    (l1.get(key) - (max.get(key) - min.get(key))).abs() < 1e-9,
                    "{family:?}/{mode:?}"
                );
            }
        }
    }

    #[test]
    fn inclusion_probabilities_are_valid_and_ordered() {
        // Shared-seed probabilities are the max over assignments; independent
        // probabilities are at least that max (union of independent events).
        let data = fixture(200);
        let shared = ColocatedSummary::build(
            &data,
            &SummaryConfig::new(25, RankFamily::Ipps, CoordinationMode::SharedSeed, 13),
        );
        let estimator = InclusiveEstimator::new(&shared);
        for record in shared.records() {
            let p = estimator.inclusion_probability(record);
            assert!(p > 0.0 && p <= 1.0 + 1e-12, "p={p}");
            let family = shared.family();
            let max_single = (0..3)
                .map(|b| {
                    family.inclusion_probability(
                        record.weights[b],
                        shared.threshold_excluding(record, b),
                    )
                })
                .fold(0.0f64, f64::max);
            assert!((p - max_single).abs() < 1e-12);
        }
    }

    #[test]
    fn aggregate_with_shared_probabilities_is_bit_identical() {
        let data = fixture(200);
        for (family, mode) in modes() {
            let config = SummaryConfig::new(25, family, mode, 29);
            let summary = ColocatedSummary::build(&data, &config);
            let estimator = InclusiveEstimator::new(&summary);
            let probs = estimator.inclusion_probabilities();
            for aggregate in [
                AggregateFn::SingleAssignment(1),
                AggregateFn::Max(vec![0, 2]),
                AggregateFn::Min(vec![0, 2]),
                AggregateFn::L1(vec![0, 2]),
            ] {
                let direct = estimator.aggregate(&aggregate).unwrap();
                let shared = estimator.aggregate_with(&aggregate, &probs).unwrap();
                assert_eq!(direct.len(), shared.len(), "{family:?}/{mode:?}");
                for (key, value) in direct.iter() {
                    // Bit-level equality, not approximate.
                    assert_eq!(
                        value.to_bits(),
                        shared.get(key).to_bits(),
                        "{family:?}/{mode:?} {}",
                        aggregate.label()
                    );
                }
                assert_eq!(
                    direct.variance_total().unwrap().to_bits(),
                    shared.variance_total().unwrap().to_bits()
                );
            }
            // Validation is shared too.
            assert!(matches!(
                estimator.aggregate_with(&AggregateFn::Max(vec![]), &probs),
                Err(CwsError::EmptyAssignmentSet)
            ));
        }
    }

    #[test]
    fn aggregate_validation_errors() {
        let data = fixture(50);
        let config = SummaryConfig::new(10, RankFamily::Ipps, CoordinationMode::SharedSeed, 1);
        let summary = ColocatedSummary::build(&data, &config);
        let estimator = InclusiveEstimator::new(&summary);
        assert!(matches!(
            estimator.single(7),
            Err(CwsError::AssignmentOutOfRange { index: 7, available: 3 })
        ));
        assert!(matches!(estimator.max(&[]), Err(CwsError::EmptyAssignmentSet)));
        assert!(matches!(
            estimator.aggregate(&AggregateFn::LthLargest { assignments: vec![0, 1], ell: 5 }),
            Err(CwsError::InvalidDependenceOrder { .. })
        ));
        assert!(matches!(
            PlainEstimator::new(&summary).single(9),
            Err(CwsError::AssignmentOutOfRange { .. })
        ));
    }

    #[test]
    fn custom_weight_functions_are_supported() {
        // Aggregates over secondary functions of the weight vector, e.g. the
        // second moment of assignment 0.
        let data = fixture(200);
        let config = SummaryConfig::new(30, RankFamily::Ipps, CoordinationMode::SharedSeed, 17);
        let exact: f64 = data.iter().map(|(_, w)| w[0] * w[0]).sum();
        let mean = mean_estimate(&data, &config, 400, |summary| {
            InclusiveEstimator::new(summary).adjusted_weights_with(|w| w[0] * w[0]).total()
        });
        assert!((mean - exact).abs() <= exact * 0.15, "mean {mean} vs exact {exact}");
    }
}
