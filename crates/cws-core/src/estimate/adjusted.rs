//! Adjusted-weight summaries (AW-summaries).
//!
//! An adjusted-weight assignment gives every sampled key a value
//! `a(i) ≥ 0` with `E[a(i)] = f(i)` (keys outside the sample implicitly get
//! `0`). Subpopulation aggregates are estimated by summing the adjusted
//! values of the sampled keys that satisfy the selection predicate
//! (Section 3, "Adjusted weights").

use std::collections::HashMap;

use crate::estimate::template::Selected;
use crate::variance::ht_variance_component;
use crate::weights::Key;

/// Adjusted weights of the sampled keys.
///
/// When built through the template estimator
/// ([`AdjustedWeights::from_selected`], which every concrete estimator uses),
/// each entry additionally retains its *support* — the raw `(value,
/// probability)` pair behind the adjusted weight — which is what the
/// variance estimators ([`AdjustedWeights::subset_variance`]) and the count
/// estimator ([`AdjustedWeights::subset_count`]) consume. Derived summaries
/// assembled outside the template (notably [`AdjustedWeights::difference`],
/// the dispersed L1 construction) carry no support and report `None` for
/// those.
#[derive(Debug, Clone, Default)]
pub struct AdjustedWeights {
    entries: Vec<(Key, f64)>,
    index: HashMap<Key, usize>,
    /// `(value, probability)` per entry, aligned with `entries`; empty when
    /// the summary was assembled without template support.
    support: Vec<Selected>,
}

/// Two AW-summaries are equal when they assign the same adjusted weight to
/// the same keys — the support detail is derived metadata and deliberately
/// excluded, so a summary built from raw entries compares equal to the same
/// summary built through the template.
impl PartialEq for AdjustedWeights {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl AdjustedWeights {
    /// Builds an AW-summary from `(key, adjusted_weight)` pairs.
    ///
    /// Zero-valued entries are dropped (they are the implicit default);
    /// duplicate keys are rejected. Summaries built this way carry no
    /// support detail (no variance / count estimators); use
    /// [`AdjustedWeights::from_selected`] when the `(value, probability)`
    /// pairs are known.
    ///
    /// # Panics
    /// Panics on duplicate keys or negative / non-finite values.
    #[must_use]
    pub fn from_entries<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (Key, f64)>,
    {
        let mut stored = Vec::new();
        let mut index = HashMap::new();
        for (key, value) in entries {
            assert!(
                value >= 0.0 && value.is_finite(),
                "adjusted weights must be finite and non-negative (key {key} had {value})"
            );
            if value == 0.0 {
                continue;
            }
            let previous = index.insert(key, stored.len());
            assert!(previous.is_none(), "duplicate adjusted weight for key {key}");
            stored.push((key, value));
        }
        Self { entries: stored, index, support: Vec::new() }
    }

    /// Builds an AW-summary from `(key, `[`Selected`]`)` pairs, retaining
    /// the `(value, probability)` support behind each adjusted weight so
    /// variance and count estimation stay available downstream.
    ///
    /// The adjusted weight stored for a key is exactly
    /// [`Selected::adjusted_weight`] (`value / probability`), bit-identical
    /// to what [`AdjustedWeights::from_entries`] would store for the same
    /// division. Zero-valued selections are dropped like zero entries.
    ///
    /// # Panics
    /// Panics on duplicate keys or selections yielding negative /
    /// non-finite adjusted weights.
    #[must_use]
    pub fn from_selected<I>(selections: I) -> Self
    where
        I: IntoIterator<Item = (Key, Selected)>,
    {
        let mut stored = Vec::new();
        let mut index = HashMap::new();
        let mut support = Vec::new();
        for (key, selected) in selections {
            let value = selected.adjusted_weight();
            assert!(
                value >= 0.0 && value.is_finite(),
                "adjusted weights must be finite and non-negative (key {key} had {value})"
            );
            if value == 0.0 {
                continue;
            }
            let previous = index.insert(key, stored.len());
            assert!(previous.is_none(), "duplicate adjusted weight for key {key}");
            stored.push((key, value));
            support.push(selected);
        }
        Self { entries: stored, index, support }
    }

    /// `true` when every entry retains its `(value, probability)` support —
    /// the precondition for [`AdjustedWeights::subset_variance`] and
    /// [`AdjustedWeights::subset_count`].
    #[must_use]
    pub fn has_support(&self) -> bool {
        self.support.len() == self.entries.len()
    }

    /// Iterates over `(key, adjusted_weight, support)` triples, or `None`
    /// when the summary carries no support.
    pub fn supported_iter(&self) -> Option<impl Iterator<Item = (Key, f64, Selected)> + '_> {
        self.has_support().then(|| {
            self.entries
                .iter()
                .zip(self.support.iter())
                .map(|(&(key, value), &selected)| (key, value, selected))
        })
    }

    /// The adjusted weight of `key` (`0` for keys without an entry).
    #[must_use]
    pub fn get(&self, key: Key) -> f64 {
        self.index.get(&key).map_or(0.0, |&slot| self.entries[slot].1)
    }

    /// Number of keys with a positive adjusted weight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no key has a positive adjusted weight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, adjusted_weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Key, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The estimate of the full-population aggregate `Σ_i f(i)`.
    ///
    /// Summed with an explicit `+0.0` seed (not `Iterator::sum`, whose
    /// identity is `-0.0`) so that every fold in the workspace — here, the
    /// query fold, the batch executor — produces bit-identical totals,
    /// including `+0.0` for an empty summary.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.entries.iter().fold(0.0, |acc, &(_, value)| acc + value)
    }

    /// The estimate of a subpopulation aggregate `Σ_{i : predicate(i)} f(i)`.
    ///
    /// The predicate is evaluated only on sampled keys — this is exactly how
    /// AW-summaries support a-posteriori selections. Seeded at `+0.0` like
    /// [`AdjustedWeights::total`].
    #[must_use]
    pub fn subset_total<P: Fn(Key) -> bool>(&self, predicate: P) -> f64 {
        self.entries
            .iter()
            .filter(|&&(key, _)| predicate(key))
            .fold(0.0, |acc, &(_, value)| acc + value)
    }

    /// Estimates `Σ_{i : predicate(i)} h(i)` for a secondary numeric function
    /// `h` with `h(i) > 0 ⇒ f(i) > 0`, by rescaling each adjusted weight with
    /// `h(i)/f(i)` (Section 3). `per_key` must return `(h(i), f(i))` for a
    /// sampled key.
    #[must_use]
    pub fn ratio_estimate<P, G>(&self, predicate: P, per_key: G) -> f64
    where
        P: Fn(Key) -> bool,
        G: Fn(Key) -> (f64, f64),
    {
        self.entries
            .iter()
            .filter(|&&(key, _)| predicate(key))
            .map(|&(key, value)| {
                let (h, f) = per_key(key);
                if f == 0.0 {
                    0.0
                } else {
                    value * h / f
                }
            })
            .sum()
    }

    /// The HT plug-in estimate of the estimator variance over a
    /// subpopulation, `Σ_{sampled i : predicate(i)} f(i)²(1/p(i) − 1)/p(i)`
    /// (see [`ht_variance_component`]) — an unbiased estimate of
    /// `Σ_{i : predicate(i)} VAR[a(i)]`, which (zero covariance across keys,
    /// Section 5) is the variance of [`AdjustedWeights::subset_total`] for
    /// the same predicate.
    ///
    /// Returns `None` when the summary carries no support detail (e.g. a
    /// [`AdjustedWeights::difference`] summary, whose entries are differences
    /// of correlated estimators with no per-key probability behind them).
    #[must_use]
    pub fn subset_variance<P: Fn(Key) -> bool>(&self, predicate: P) -> Option<f64> {
        let iter = self.supported_iter()?;
        Some(iter.filter(|&(key, _, _)| predicate(key)).fold(0.0, |acc, (_, _, selected)| {
            acc + ht_variance_component(selected.value, selected.probability)
        }))
    }

    /// [`AdjustedWeights::subset_variance`] over the full population.
    #[must_use]
    pub fn variance_total(&self) -> Option<f64> {
        self.subset_variance(|_| true)
    }

    /// The HT estimate of the subpopulation *cardinality*
    /// `|{i : predicate(i), f(i) > 0}|` and its plug-in variance estimate,
    /// as `(count, variance)`.
    ///
    /// Each sampled key contributes `1/p(i)` to the count (the HT estimator
    /// for the constant function `h(i) = 1` over the support of `f`) and
    /// `(1/p(i) − 1)/p(i)` to the variance ([`ht_variance_component`] with
    /// `f = 1`).
    ///
    /// Returns `None` when the summary carries no support detail.
    #[must_use]
    pub fn subset_count<P: Fn(Key) -> bool>(&self, predicate: P) -> Option<(f64, f64)> {
        let iter = self.supported_iter()?;
        let mut count = 0.0;
        let mut variance = 0.0;
        for (_, _, selected) in iter.filter(|&(key, _, _)| predicate(key)) {
            count += 1.0 / selected.probability;
            variance += ht_variance_component(1.0, selected.probability);
        }
        Some((count, variance))
    }

    /// Per-key difference `a(i) − b(i)` over the union of the supports,
    /// clamped at zero from below.
    ///
    /// This is how the L1 (range) estimator `a^(L1) = a^(max) − a^(min)` is
    /// assembled (Eq. 17); for consistent rank assignments the difference is
    /// provably non-negative (Lemma 7.5), so the clamp only absorbs
    /// floating-point noise.
    #[must_use]
    pub fn difference(minuend: &Self, subtrahend: &Self) -> Self {
        let mut keys: Vec<Key> = minuend.iter().map(|(key, _)| key).collect();
        keys.extend(subtrahend.iter().map(|(key, _)| key));
        keys.sort_unstable();
        keys.dedup();
        Self::from_entries(
            keys.into_iter().map(|key| (key, (minuend.get(key) - subtrahend.get(key)).max(0.0))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let aw = AdjustedWeights::from_entries(vec![(1, 2.0), (2, 0.0), (3, 4.5)]);
        assert_eq!(aw.len(), 2);
        assert!(!aw.is_empty());
        assert_eq!(aw.get(1), 2.0);
        assert_eq!(aw.get(2), 0.0);
        assert_eq!(aw.get(99), 0.0);
        assert_eq!(aw.total(), 6.5);
    }

    #[test]
    fn subset_total_filters() {
        let aw = AdjustedWeights::from_entries((0u64..10).map(|k| (k, 1.0)));
        assert_eq!(aw.subset_total(|k| k < 3), 3.0);
        assert_eq!(aw.subset_total(|_| false), 0.0);
    }

    #[test]
    fn ratio_estimate_scales_by_secondary_function() {
        let aw = AdjustedWeights::from_entries(vec![(1, 10.0), (2, 20.0)]);
        // h(i) = f(i) / 2 for every key.
        let estimate = aw.ratio_estimate(|_| true, |_| (1.0, 2.0));
        assert_eq!(estimate, 15.0);
        // Keys with f = 0 contribute nothing.
        let estimate =
            aw.ratio_estimate(|_| true, |k| if k == 1 { (3.0, 0.0) } else { (1.0, 1.0) });
        assert_eq!(estimate, 20.0);
    }

    #[test]
    fn difference_clamps_at_zero() {
        let a = AdjustedWeights::from_entries(vec![(1, 5.0), (2, 1.0)]);
        let b = AdjustedWeights::from_entries(vec![(1, 2.0), (2, 3.0), (3, 1.0)]);
        let d = AdjustedWeights::difference(&a, &b);
        assert_eq!(d.get(1), 3.0);
        assert_eq!(d.get(2), 0.0);
        assert_eq!(d.get(3), 0.0);
        assert_eq!(d.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate adjusted weight")]
    fn duplicate_keys_rejected() {
        let _ = AdjustedWeights::from_entries(vec![(1, 1.0), (1, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_values_rejected() {
        let _ = AdjustedWeights::from_entries(vec![(1, -1.0)]);
    }

    #[test]
    fn from_selected_matches_from_entries_and_keeps_support() {
        let selections = vec![
            (1, Selected { value: 2.0, probability: 0.5 }),
            (2, Selected { value: 0.0, probability: 1.0 }),
            (3, Selected { value: 3.0, probability: 0.25 }),
        ];
        let supported = AdjustedWeights::from_selected(selections.clone());
        let plain = AdjustedWeights::from_entries(
            selections.iter().map(|&(key, s)| (key, s.adjusted_weight())),
        );
        // Equality ignores support: both carry {1 → 4, 3 → 12}.
        assert_eq!(supported, plain);
        assert!(supported.has_support());
        assert!(!plain.has_support());
        assert_eq!(supported.len(), 2);
        assert_eq!(supported.get(1), 4.0);
        assert_eq!(supported.get(3), 12.0);
    }

    #[test]
    fn subset_variance_sums_plug_in_components() {
        let aw = AdjustedWeights::from_selected(vec![
            (1, Selected { value: 2.0, probability: 0.5 }),
            (2, Selected { value: 3.0, probability: 0.25 }),
        ]);
        // key 1: 4·(2−1)·2 = 8; key 2: 9·(4−1)·4 = 108.
        let total = aw.variance_total().unwrap();
        assert!((total - 116.0).abs() < 1e-9);
        let only_one = aw.subset_variance(|k| k == 1).unwrap();
        assert!((only_one - 8.0).abs() < 1e-12);
        // No support → no variance estimate.
        assert!(AdjustedWeights::from_entries(vec![(1, 1.0)]).variance_total().is_none());
    }

    #[test]
    fn subset_count_is_ht_over_the_support() {
        let aw = AdjustedWeights::from_selected(vec![
            (1, Selected { value: 2.0, probability: 0.5 }),
            (2, Selected { value: 3.0, probability: 0.25 }),
        ]);
        let (count, variance) = aw.subset_count(|_| true).unwrap();
        assert!((count - 6.0).abs() < 1e-12); // 2 + 4
        assert!((variance - (2.0 + 12.0)).abs() < 1e-12); // (2−1)·2 + (4−1)·4
        let (count, variance) = aw.subset_count(|k| k == 2).unwrap();
        assert!((count - 4.0).abs() < 1e-12);
        assert!((variance - 12.0).abs() < 1e-12);
    }

    #[test]
    fn difference_drops_support() {
        let a =
            AdjustedWeights::from_selected(vec![(1, Selected { value: 5.0, probability: 1.0 })]);
        let b =
            AdjustedWeights::from_selected(vec![(1, Selected { value: 2.0, probability: 1.0 })]);
        let d = AdjustedWeights::difference(&a, &b);
        assert_eq!(d.get(1), 3.0);
        assert!(!d.has_support());
        assert!(d.variance_total().is_none());
    }

    #[test]
    fn default_is_empty() {
        let aw = AdjustedWeights::default();
        assert!(aw.is_empty());
        assert_eq!(aw.total(), 0.0);
    }
}
