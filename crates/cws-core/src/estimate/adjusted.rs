//! Adjusted-weight summaries (AW-summaries).
//!
//! An adjusted-weight assignment gives every sampled key a value
//! `a(i) ≥ 0` with `E[a(i)] = f(i)` (keys outside the sample implicitly get
//! `0`). Subpopulation aggregates are estimated by summing the adjusted
//! values of the sampled keys that satisfy the selection predicate
//! (Section 3, "Adjusted weights").

use std::collections::HashMap;

use crate::weights::Key;

/// Adjusted weights of the sampled keys.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdjustedWeights {
    entries: Vec<(Key, f64)>,
    index: HashMap<Key, usize>,
}

impl AdjustedWeights {
    /// Builds an AW-summary from `(key, adjusted_weight)` pairs.
    ///
    /// Zero-valued entries are dropped (they are the implicit default);
    /// duplicate keys are rejected.
    ///
    /// # Panics
    /// Panics on duplicate keys or negative / non-finite values.
    #[must_use]
    pub fn from_entries<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (Key, f64)>,
    {
        let mut stored = Vec::new();
        let mut index = HashMap::new();
        for (key, value) in entries {
            assert!(
                value >= 0.0 && value.is_finite(),
                "adjusted weights must be finite and non-negative (key {key} had {value})"
            );
            if value == 0.0 {
                continue;
            }
            let previous = index.insert(key, stored.len());
            assert!(previous.is_none(), "duplicate adjusted weight for key {key}");
            stored.push((key, value));
        }
        Self { entries: stored, index }
    }

    /// The adjusted weight of `key` (`0` for keys without an entry).
    #[must_use]
    pub fn get(&self, key: Key) -> f64 {
        self.index.get(&key).map_or(0.0, |&slot| self.entries[slot].1)
    }

    /// Number of keys with a positive adjusted weight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no key has a positive adjusted weight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, adjusted_weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Key, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The estimate of the full-population aggregate `Σ_i f(i)`.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, value)| value).sum()
    }

    /// The estimate of a subpopulation aggregate `Σ_{i : predicate(i)} f(i)`.
    ///
    /// The predicate is evaluated only on sampled keys — this is exactly how
    /// AW-summaries support a-posteriori selections.
    #[must_use]
    pub fn subset_total<P: Fn(Key) -> bool>(&self, predicate: P) -> f64 {
        self.entries.iter().filter(|&&(key, _)| predicate(key)).map(|&(_, value)| value).sum()
    }

    /// Estimates `Σ_{i : predicate(i)} h(i)` for a secondary numeric function
    /// `h` with `h(i) > 0 ⇒ f(i) > 0`, by rescaling each adjusted weight with
    /// `h(i)/f(i)` (Section 3). `per_key` must return `(h(i), f(i))` for a
    /// sampled key.
    #[must_use]
    pub fn ratio_estimate<P, G>(&self, predicate: P, per_key: G) -> f64
    where
        P: Fn(Key) -> bool,
        G: Fn(Key) -> (f64, f64),
    {
        self.entries
            .iter()
            .filter(|&&(key, _)| predicate(key))
            .map(|&(key, value)| {
                let (h, f) = per_key(key);
                if f == 0.0 {
                    0.0
                } else {
                    value * h / f
                }
            })
            .sum()
    }

    /// Per-key difference `a(i) − b(i)` over the union of the supports,
    /// clamped at zero from below.
    ///
    /// This is how the L1 (range) estimator `a^(L1) = a^(max) − a^(min)` is
    /// assembled (Eq. 17); for consistent rank assignments the difference is
    /// provably non-negative (Lemma 7.5), so the clamp only absorbs
    /// floating-point noise.
    #[must_use]
    pub fn difference(minuend: &Self, subtrahend: &Self) -> Self {
        let mut keys: Vec<Key> = minuend.iter().map(|(key, _)| key).collect();
        keys.extend(subtrahend.iter().map(|(key, _)| key));
        keys.sort_unstable();
        keys.dedup();
        Self::from_entries(
            keys.into_iter().map(|key| (key, (minuend.get(key) - subtrahend.get(key)).max(0.0))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let aw = AdjustedWeights::from_entries(vec![(1, 2.0), (2, 0.0), (3, 4.5)]);
        assert_eq!(aw.len(), 2);
        assert!(!aw.is_empty());
        assert_eq!(aw.get(1), 2.0);
        assert_eq!(aw.get(2), 0.0);
        assert_eq!(aw.get(99), 0.0);
        assert_eq!(aw.total(), 6.5);
    }

    #[test]
    fn subset_total_filters() {
        let aw = AdjustedWeights::from_entries((0u64..10).map(|k| (k, 1.0)));
        assert_eq!(aw.subset_total(|k| k < 3), 3.0);
        assert_eq!(aw.subset_total(|_| false), 0.0);
    }

    #[test]
    fn ratio_estimate_scales_by_secondary_function() {
        let aw = AdjustedWeights::from_entries(vec![(1, 10.0), (2, 20.0)]);
        // h(i) = f(i) / 2 for every key.
        let estimate = aw.ratio_estimate(|_| true, |_| (1.0, 2.0));
        assert_eq!(estimate, 15.0);
        // Keys with f = 0 contribute nothing.
        let estimate =
            aw.ratio_estimate(|_| true, |k| if k == 1 { (3.0, 0.0) } else { (1.0, 1.0) });
        assert_eq!(estimate, 20.0);
    }

    #[test]
    fn difference_clamps_at_zero() {
        let a = AdjustedWeights::from_entries(vec![(1, 5.0), (2, 1.0)]);
        let b = AdjustedWeights::from_entries(vec![(1, 2.0), (2, 3.0), (3, 1.0)]);
        let d = AdjustedWeights::difference(&a, &b);
        assert_eq!(d.get(1), 3.0);
        assert_eq!(d.get(2), 0.0);
        assert_eq!(d.get(3), 0.0);
        assert_eq!(d.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate adjusted weight")]
    fn duplicate_keys_rejected() {
        let _ = AdjustedWeights::from_entries(vec![(1, 1.0), (1, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_values_rejected() {
        let _ = AdjustedWeights::from_entries(vec![(1, -1.0)]);
    }

    #[test]
    fn default_is_empty() {
        let aw = AdjustedWeights::default();
        assert!(aw.is_empty());
        assert_eq!(aw.total(), 0.0);
    }
}
