//! Estimators for a single sketch: Horvitz–Thompson for Poisson samples and
//! rank conditioning (RC) for bottom-k samples (Section 3).

use crate::estimate::adjusted::AdjustedWeights;
use crate::estimate::template::Selected;
use crate::ranks::RankFamily;
use crate::sketch::bottomk::BottomKSketch;
use crate::sketch::poisson::PoissonSketch;

/// The RC (rank-conditioning) adjusted weights of a bottom-k sketch:
/// `a(i) = w(i) / F_{w(i)}(r_{k+1}(I))` for sampled keys (Section 3).
///
/// With IPPS ranks this is the priority-sampling estimator; its sum of
/// per-key variances is at most that of an HT estimator over a Poisson IPPS
/// sample of expected size `k + 1`.
#[must_use]
pub fn rc_adjusted_weights(sketch: &BottomKSketch, family: RankFamily) -> AdjustedWeights {
    let threshold = sketch.next_rank();
    AdjustedWeights::from_selected(sketch.entries().iter().map(|entry| {
        let p = family.inclusion_probability(entry.weight, threshold);
        (entry.key, Selected { value: entry.weight, probability: p })
    }))
}

/// The Horvitz–Thompson adjusted weights of a Poisson-τ sketch:
/// `a(i) = w(i) / F_{w(i)}(τ)` for sampled keys (Section 3).
#[must_use]
pub fn ht_adjusted_weights(sketch: &PoissonSketch, family: RankFamily) -> AdjustedWeights {
    let tau = sketch.tau();
    AdjustedWeights::from_selected(sketch.entries().iter().map(|entry| {
        let p = family.inclusion_probability(entry.weight, tau);
        (entry.key, Selected { value: entry.weight, probability: p })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{Key, WeightedSet};
    use cws_hash::SeedSequence;

    /// The Figure 1 weighted set and rank assignment.
    fn figure1_ranked() -> Vec<(Key, f64, f64)> {
        let weights = [20.0, 10.0, 12.0, 20.0, 10.0, 10.0];
        // Ranks as printed in Figure 1 (i3's printed rank 0.0583 differs from
        // u/w = 0.005833…; we reproduce the printed figure).
        let ranks = [0.011, 0.075, 0.0583, 0.046, 0.055, 0.037];
        (0..6).map(|i| (i as Key + 1, ranks[i], weights[i])).collect()
    }

    #[test]
    fn figure1_bottom_k_adjusted_weights() {
        // Figure 1, bottom-k panel: k = 1, 2, 3 give the listed adjusted
        // weights 27.02; 21.74/21.74; 20.00/20.00/18.18.
        let ranked = figure1_ranked();

        let sketch = BottomKSketch::from_ranked(1, ranked.clone());
        let aw = rc_adjusted_weights(&sketch, RankFamily::Ipps);
        assert!((aw.get(1) - 20.0 / (20.0 * 0.037)).abs() < 1e-9);
        assert!((aw.get(1) - 27.027).abs() < 1e-2);

        let sketch = BottomKSketch::from_ranked(2, ranked.clone());
        let aw = rc_adjusted_weights(&sketch, RankFamily::Ipps);
        assert!((aw.get(1) - 21.739).abs() < 1e-2);
        assert!((aw.get(6) - 21.739).abs() < 1e-2);
        assert_eq!(aw.get(4), 0.0);

        let sketch = BottomKSketch::from_ranked(3, ranked);
        let aw = rc_adjusted_weights(&sketch, RankFamily::Ipps);
        assert!((aw.get(1) - 20.0).abs() < 1e-9);
        assert!((aw.get(4) - 20.0).abs() < 1e-9);
        assert!((aw.get(6) - 18.1818).abs() < 1e-3);
        // Subpopulation J = {i2, i4, i6}: estimate 38.18 (paper text).
        let estimate = aw.subset_total(|key| key % 2 == 0);
        assert!((estimate - 38.18).abs() < 1e-2);
    }

    #[test]
    fn figure1_poisson_adjusted_weights() {
        // Figure 1, Poisson panel: tau = k/82 and only i1 is sampled, with
        // adjusted weights 82, 41, 27.40 for k = 1, 2, 3.
        let ranked = figure1_ranked();
        // The k = 3 value is 20 / (60/82) = 27.33…; the figure prints 27.40
        // because it rounds the inclusion probability to 0.73 first.
        let expected = [82.0, 41.0, 27.333_333];
        for k in 1..=3usize {
            let tau = k as f64 / 82.0;
            let sketch = PoissonSketch::from_ranked(tau, ranked.clone());
            let aw = ht_adjusted_weights(&sketch, RankFamily::Ipps);
            assert_eq!(aw.len(), 1);
            assert!((aw.get(1) - expected[k - 1]).abs() < 5e-3, "k={k}: {}", aw.get(1));
        }
    }

    #[test]
    fn rc_estimator_is_unbiased_statistically() {
        // Average the subset estimate over many independent samples and
        // compare with the exact subset weight.
        let set = WeightedSet::from_pairs((0u64..300).map(|k| (k, ((k % 17) + 1) as f64)));
        let exact = set.subset_total(|k| k % 3 == 0);
        let runs = 600;
        let k = 30;
        let mut total = 0.0;
        for run in 0..runs {
            let seeds = SeedSequence::new(5000 + run);
            let sketch = BottomKSketch::sample(&set, k, RankFamily::Ipps, &seeds);
            let aw = rc_adjusted_weights(&sketch, RankFamily::Ipps);
            total += aw.subset_total(|key| key % 3 == 0);
        }
        let mean = total / runs as f64;
        assert!((mean - exact).abs() < exact * 0.05, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn ht_estimator_is_unbiased_statistically() {
        let set = WeightedSet::from_pairs((0u64..300).map(|k| (k, ((k % 17) + 1) as f64)));
        let exact = set.total();
        let runs = 600;
        let mut total = 0.0;
        for run in 0..runs {
            let seeds = SeedSequence::new(9000 + run);
            let sketch = PoissonSketch::sample(&set, 30.0, RankFamily::Exp, &seeds);
            let aw = ht_adjusted_weights(&sketch, RankFamily::Exp);
            total += aw.total();
        }
        let mean = total / runs as f64;
        assert!((mean - exact).abs() < exact * 0.05, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn small_population_gets_exact_weights() {
        // When the population has at most k positive keys, r_{k+1} = +inf and
        // every key gets its exact weight.
        let ranked = figure1_ranked();
        let sketch = BottomKSketch::from_ranked(10, ranked);
        let aw = rc_adjusted_weights(&sketch, RankFamily::Ipps);
        assert_eq!(aw.total(), 82.0);
        for (key, weight) in [(1, 20.0), (2, 10.0), (3, 12.0), (4, 20.0), (5, 10.0), (6, 10.0)] {
            assert_eq!(aw.get(key), weight);
        }
    }
}
