//! Estimators over sketches and multi-assignment summaries.
//!
//! All estimators produce [`adjusted::AdjustedWeights`] — per-key adjusted
//! values `a^(f)(i)` with `E[a^(f)(i)] = f(i)` — so that any subpopulation
//! aggregate `Σ_{i : d(i)} f(i)` is estimated by summing the adjusted values
//! of the sampled keys that satisfy the predicate `d`, which may be chosen
//! after the summary was built.
//!
//! * [`single`] — estimators for a single sketch: the Horvitz–Thompson
//!   estimator for Poisson samples and the rank-conditioning (RC) estimator
//!   for bottom-k samples.
//! * [`template`] — the paper's template estimator (Section 5): every
//!   concrete estimator is a choice of selection rule `S*` together with a
//!   conditional inclusion probability.
//! * [`colocated`] — inclusive and plain estimators over colocated summaries
//!   (Section 6).
//! * [`dispersed`] — s-set and l-set estimators for max / min / L1 /
//!   ℓ-th-largest aggregates over dispersed summaries (Section 7).

pub mod adjusted;
pub mod colocated;
pub mod dispersed;
pub mod single;
pub mod template;

pub use adjusted::AdjustedWeights;
pub use colocated::{InclusiveEstimator, PlainEstimator};
pub use dispersed::{DispersedEstimator, SelectionKind};
pub use single::{ht_adjusted_weights, rc_adjusted_weights};
pub use template::Selected;
