//! The template estimator (Section 5).
//!
//! Every estimator in this crate is an instance of the same recipe, the
//! paper's *template estimator* built on HT over a partitioned sample space
//! (HTP) with rank conditioning (RC):
//!
//! 1. choose, for every key `i`, a selection `S*(i)` of summary outcomes in
//!    which `f(i)` (and the predicate `d(i)`) can be evaluated from the
//!    summary alone;
//! 2. compute the conditional probability `p(S, i)` that the outcome lands in
//!    `S*(i)`, conditioned on the ranks of all other keys (`Ω(i, r^{-i})`);
//! 3. assign the adjusted weight `a^(f)(i) = f(i) / p(S, i)` when the outcome
//!    is selected and `0` otherwise.
//!
//! Unbiasedness follows because, within every conditioned subspace, the
//! selected outcomes occur with probability exactly `p(S, i)`. The variance
//! decreases as the selection gets more inclusive (Lemma 5.1) — which is why
//! the *inclusive* colocated estimators and the *l-set* dispersed estimators
//! dominate their simpler counterparts.
//!
//! The concrete selection rules live in [`crate::estimate::colocated`] and
//! [`crate::estimate::dispersed`]; this module provides the shared plumbing.

use crate::estimate::adjusted::AdjustedWeights;
use crate::weights::Key;

/// The outcome of applying a selection rule to one key: the value `f(i)`
/// determined from the summary and the conditional inclusion probability of
/// the selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selected {
    /// `f(i)`, as determined from the summary.
    pub value: f64,
    /// `p(S, i) ∈ (0, 1]` — the probability, conditioned on the ranks of all
    /// other keys, that the summary outcome belongs to the selection.
    pub probability: f64,
}

impl Selected {
    /// The adjusted weight `f(i) / p(S, i)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the probability is not in `(0, 1]` while
    /// the value is positive — that would make the estimator undefined
    /// (requirement 1 of the template).
    #[must_use]
    pub fn adjusted_weight(&self) -> f64 {
        if self.value == 0.0 {
            return 0.0;
        }
        debug_assert!(
            self.probability > 0.0 && self.probability <= 1.0 + 1e-12,
            "inclusion probability must be in (0,1], got {}",
            self.probability
        );
        self.value / self.probability
    }
}

/// Drives the template estimator: applies a selection rule to every candidate
/// key of the summary and assembles the resulting [`AdjustedWeights`].
///
/// `selection(key)` returns `None` when the outcome is not in `S*(key)` (the
/// key then keeps its implicit zero adjusted weight). The `(value,
/// probability)` pairs are retained as support detail, so the resulting
/// summary can also estimate its own variance and the subpopulation count.
#[must_use]
pub fn estimate_from_selection<I, F>(candidates: I, mut selection: F) -> AdjustedWeights
where
    I: IntoIterator<Item = Key>,
    F: FnMut(Key) -> Option<Selected>,
{
    AdjustedWeights::from_selected(
        candidates.into_iter().filter_map(|key| selection(key).map(|selected| (key, selected))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjusted_weight_divides_by_probability() {
        let s = Selected { value: 3.0, probability: 0.25 };
        assert_eq!(s.adjusted_weight(), 12.0);
        let zero = Selected { value: 0.0, probability: 0.0 };
        assert_eq!(zero.adjusted_weight(), 0.0);
    }

    #[test]
    fn estimate_from_selection_collects_only_selected_keys() {
        let aw = estimate_from_selection(0u64..6, |key| {
            (key % 2 == 0).then_some(Selected { value: key as f64, probability: 0.5 })
        });
        assert_eq!(aw.len(), 2); // keys 2 and 4 (key 0 has value 0)
        assert_eq!(aw.get(2), 4.0);
        assert_eq!(aw.get(4), 8.0);
        assert_eq!(aw.get(1), 0.0);
    }
}
