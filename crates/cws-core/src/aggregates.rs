//! Aggregate functions over multi-assignment data and their exact evaluation.
//!
//! The queries supported by the summaries are sums `Σ_{i : d(i)} f(i)` where
//! `d` is a selection predicate over keys and `f` is a per-key numeric
//! function of the weight vector (Section 4). This module defines the
//! aggregate functions used throughout the paper and computes them exactly
//! from the full data — the ground truth against which the estimators are
//! evaluated.

use crate::weights::{Key, MultiWeighted};

/// A per-key numeric function `f(i)` of the weight vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregateFn {
    /// `f(i) = w^(b)(i)` — a single-assignment weighted sum.
    SingleAssignment(usize),
    /// `f(i) = max_{b ∈ R} w^(b)(i)` — the max-dominance norm contribution.
    Max(Vec<usize>),
    /// `f(i) = min_{b ∈ R} w^(b)(i)` — the min-dominance norm contribution.
    Min(Vec<usize>),
    /// `f(i) = max_R − min_R` — the range / L1 difference contribution.
    L1(Vec<usize>),
    /// `f(i)` = the ℓ-th largest entry of `w^(R)(i)` (1-based; ℓ=1 is the
    /// maximum, ℓ=|R| the minimum). Quantiles such as the median are special
    /// cases.
    LthLargest {
        /// The relevant assignments `R`.
        assignments: Vec<usize>,
        /// Which order statistic (1-based, from the largest).
        ell: usize,
    },
}

impl AggregateFn {
    /// The set of assignments the function depends on.
    #[must_use]
    pub fn relevant_assignments(&self) -> Vec<usize> {
        match self {
            AggregateFn::SingleAssignment(b) => vec![*b],
            AggregateFn::Max(r) | AggregateFn::Min(r) | AggregateFn::L1(r) => r.clone(),
            AggregateFn::LthLargest { assignments, .. } => assignments.clone(),
        }
    }

    /// Evaluates `f(i)` on a weight vector (indexed by assignment).
    ///
    /// # Panics
    /// Panics if an assignment index is out of range for the vector, if the
    /// relevant set is empty, or if ℓ is out of range.
    #[must_use]
    pub fn evaluate(&self, weights: &[f64]) -> f64 {
        match self {
            AggregateFn::SingleAssignment(b) => weights[*b],
            AggregateFn::Max(r) => {
                assert!(!r.is_empty(), "relevant assignment set must not be empty");
                r.iter().map(|&b| weights[b]).fold(0.0, f64::max)
            }
            AggregateFn::Min(r) => {
                assert!(!r.is_empty(), "relevant assignment set must not be empty");
                r.iter().map(|&b| weights[b]).fold(f64::INFINITY, f64::min)
            }
            AggregateFn::L1(r) => {
                let max = AggregateFn::Max(r.clone()).evaluate(weights);
                let min = AggregateFn::Min(r.clone()).evaluate(weights);
                max - min
            }
            AggregateFn::LthLargest { assignments, ell } => {
                assert!(!assignments.is_empty(), "relevant assignment set must not be empty");
                assert!(*ell >= 1 && *ell <= assignments.len(), "ell must be in 1..=|R|");
                let mut values: Vec<f64> = assignments.iter().map(|&b| weights[b]).collect();
                values.sort_by(|a, b| b.total_cmp(a));
                values[*ell - 1]
            }
        }
    }

    /// Short label used by the experiment harness ("min", "max", "L1", …).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            AggregateFn::SingleAssignment(b) => format!("w({b})"),
            AggregateFn::Max(_) => "max".to_string(),
            AggregateFn::Min(_) => "min".to_string(),
            AggregateFn::L1(_) => "L1".to_string(),
            AggregateFn::LthLargest { ell, .. } => format!("{ell}-th largest"),
        }
    }
}

/// Exactly evaluates `Σ_{i : predicate(i)} f(i)` over the full data set.
#[must_use]
pub fn exact_aggregate<P>(data: &MultiWeighted, f: &AggregateFn, predicate: P) -> f64
where
    P: Fn(Key) -> bool,
{
    data.iter().filter(|&(key, _)| predicate(key)).map(|(_, weights)| f.evaluate(weights)).sum()
}

/// Exact per-key values of `f`, in the data set's key order. Used by the
/// evaluation harness to compute per-key squared errors.
#[must_use]
pub fn exact_per_key(data: &MultiWeighted, f: &AggregateFn) -> Vec<(Key, f64)> {
    data.iter().map(|(key, weights)| (key, f.evaluate(weights))).collect()
}

/// The weighted Jaccard similarity of assignments `a` and `b` over the keys
/// selected by `predicate`:
/// `Σ min(w^(a), w^(b)) / Σ max(w^(a), w^(b))` (Section 4).
///
/// Returns `0` when the max-sum is zero (both assignments empty on the
/// selection).
#[must_use]
pub fn weighted_jaccard<P>(data: &MultiWeighted, a: usize, b: usize, predicate: P) -> f64
where
    P: Fn(Key) -> bool,
{
    let min = exact_aggregate(data, &AggregateFn::Min(vec![a, b]), &predicate);
    let max = exact_aggregate(data, &AggregateFn::Max(vec![a, b]), &predicate);
    if max == 0.0 {
        0.0
    } else {
        min / max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 2 (A) data set.
    fn figure2() -> MultiWeighted {
        let w1 = [15.0, 0.0, 10.0, 5.0, 10.0, 10.0];
        let w2 = [20.0, 10.0, 12.0, 20.0, 0.0, 10.0];
        let w3 = [10.0, 15.0, 15.0, 0.0, 15.0, 10.0];
        let mut b = MultiWeighted::builder(3);
        for key in 0..6u64 {
            b.add(key, 0, w1[key as usize]);
            b.add(key, 1, w2[key as usize]);
            b.add(key, 2, w3[key as usize]);
        }
        b.build()
    }

    #[test]
    fn figure2_per_key_functions() {
        let data = figure2();
        // w(max{1,2}) row of Figure 2 (assignments 0 and 1 here).
        let max12: Vec<f64> =
            data.iter().map(|(_, w)| AggregateFn::Max(vec![0, 1]).evaluate(w)).collect();
        assert_eq!(max12, vec![20.0, 10.0, 12.0, 20.0, 10.0, 10.0]);
        let max123: Vec<f64> =
            data.iter().map(|(_, w)| AggregateFn::Max(vec![0, 1, 2]).evaluate(w)).collect();
        assert_eq!(max123, vec![20.0, 15.0, 15.0, 20.0, 15.0, 10.0]);
        let min12: Vec<f64> =
            data.iter().map(|(_, w)| AggregateFn::Min(vec![0, 1]).evaluate(w)).collect();
        assert_eq!(min12, vec![15.0, 0.0, 10.0, 5.0, 0.0, 10.0]);
        let min123: Vec<f64> =
            data.iter().map(|(_, w)| AggregateFn::Min(vec![0, 1, 2]).evaluate(w)).collect();
        assert_eq!(min123, vec![10.0, 0.0, 10.0, 0.0, 0.0, 10.0]);
        let l1_12: Vec<f64> =
            data.iter().map(|(_, w)| AggregateFn::L1(vec![0, 1]).evaluate(w)).collect();
        assert_eq!(l1_12, vec![5.0, 10.0, 2.0, 15.0, 10.0, 0.0]);
        let l1_23: Vec<f64> =
            data.iter().map(|(_, w)| AggregateFn::L1(vec![1, 2]).evaluate(w)).collect();
        assert_eq!(l1_23, vec![10.0, 5.0, 3.0, 20.0, 15.0, 0.0]);
    }

    #[test]
    fn figure2_subpopulation_aggregates() {
        let data = figure2();
        // "max dominance norm over even keys" — keys i2, i4, i6 are our keys
        // 1, 3, 5 (0-based) — for R = {1,2,3}: 15 + 20 + 10 = 45.
        let even = |key: Key| key % 2 == 1;
        let value = exact_aggregate(&data, &AggregateFn::Max(vec![0, 1, 2]), even);
        assert_eq!(value, 45.0);
        // L1 between assignments 2 and 3 over keys i1,i2,i3 = 10 + 5 + 3.
        let first_three = |key: Key| key < 3;
        let value = exact_aggregate(&data, &AggregateFn::L1(vec![1, 2]), first_three);
        assert_eq!(value, 18.0);
    }

    #[test]
    fn lth_largest_orders_correctly() {
        let f1 = AggregateFn::LthLargest { assignments: vec![0, 1, 2], ell: 1 };
        let f2 = AggregateFn::LthLargest { assignments: vec![0, 1, 2], ell: 2 };
        let f3 = AggregateFn::LthLargest { assignments: vec![0, 1, 2], ell: 3 };
        let w = [5.0, 20.0, 10.0];
        assert_eq!(f1.evaluate(&w), 20.0);
        assert_eq!(f2.evaluate(&w), 10.0);
        assert_eq!(f3.evaluate(&w), 5.0);
    }

    #[test]
    #[should_panic(expected = "ell must be in")]
    fn lth_largest_out_of_range_panics() {
        let f = AggregateFn::LthLargest { assignments: vec![0, 1], ell: 3 };
        let _ = f.evaluate(&[1.0, 2.0]);
    }

    #[test]
    fn relevant_assignments_and_labels() {
        assert_eq!(AggregateFn::SingleAssignment(2).relevant_assignments(), vec![2]);
        assert_eq!(AggregateFn::L1(vec![0, 3]).relevant_assignments(), vec![0, 3]);
        assert_eq!(AggregateFn::Min(vec![1]).label(), "min");
        assert_eq!(AggregateFn::SingleAssignment(1).label(), "w(1)");
        assert_eq!(
            AggregateFn::LthLargest { assignments: vec![0, 1, 2], ell: 2 }.label(),
            "2-th largest"
        );
    }

    #[test]
    fn weighted_jaccard_identical_and_disjoint() {
        let mut b = MultiWeighted::builder(2);
        b.add(1, 0, 3.0).add(1, 1, 3.0).add(2, 0, 5.0).add(2, 1, 5.0);
        let same = b.build();
        assert_eq!(weighted_jaccard(&same, 0, 1, |_| true), 1.0);

        let mut b = MultiWeighted::builder(2);
        b.add(1, 0, 3.0).add(2, 1, 5.0);
        let disjoint = b.build();
        assert_eq!(weighted_jaccard(&disjoint, 0, 1, |_| true), 0.0);

        // Empty selection.
        assert_eq!(weighted_jaccard(&same, 0, 1, |_| false), 0.0);
    }

    #[test]
    fn exact_per_key_matches_iteration() {
        let data = figure2();
        let per_key = exact_per_key(&data, &AggregateFn::SingleAssignment(1));
        assert_eq!(per_key.len(), 6);
        assert_eq!(per_key[0], (0, 20.0));
        assert_eq!(per_key[4], (4, 0.0));
    }
}
