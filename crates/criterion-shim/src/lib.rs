//! Minimal, dependency-free stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The workspace is built in environments without access to crates.io, so the
//! real `criterion` crate cannot be fetched. This shim exposes the subset of
//! the criterion 0.5 surface that the `cws-bench` benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `black_box`,
//! `criterion_group!` and `criterion_main!` — with a simple
//! wall-clock measurement loop (warm-up, then a fixed number of timed
//! samples, reporting mean / min / max per iteration). Swapping in the real
//! crate later only requires changing the `criterion` entry in
//! `[workspace.dependencies]`; no bench source changes are needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting benchmarked work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one benchmark within a group: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { text: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput annotation for a benchmark group (reported, not rate-limited).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing driver handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self { samples: Vec::new(), iters_per_sample: 1, sample_count }
    }

    /// Times `routine`, first calibrating how many iterations fit in a sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for samples of ~5ms each so cheap routines are
        // measured over many iterations.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> =
            self.samples.iter().map(|d| d.as_secs_f64() / self.iters_per_sample as f64).collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let extra = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3e} elem/s", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) => format!("  {:.3e} B/s", n as f64 / mean),
            None => String::new(),
        };
        println!(
            "{label:<40} time: [{} {} {}]{extra}",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the group with a throughput so rates are reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&label, self.throughput);
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&label, self.throughput);
        self
    }

    /// Ends the group (printing nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver. One instance is threaded through every bench fn.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup { name, sample_size: 50, throughput: None, _criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(50);
        f(&mut bencher);
        bencher.report(&id.to_string(), None);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x));
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 16).to_string(), "f/16");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
